"""Conformance rules (RL101-RL103) against synthetic protocol trees."""

from tests.lint.conftest import rule_ids

PROTO = "protocols/fake.py"

CONFORMING = """
from repro.routing.base import RoutingProtocol


class GoodProtocol(RoutingProtocol):
    def successor(self, dst):
        entry = self.table.get(dst)
        return entry[0] if entry else None

    def route_metric(self, dst):
        entry = self.table.get(dst)
        if entry is None:
            return None
        return (entry[1], entry[2], entry[3])

    def adopt(self, dst, via, sn, fd, d):
        self.table[dst] = (via, sn, fd, d)
        self._notify_table_change(dst)
"""


def test_conforming_protocol_is_clean(lint_tree):
    assert rule_ids(lint_tree({PROTO: CONFORMING})) == []


def test_rl101_missing_successor(lint_tree):
    source = (
        "from repro.routing.base import RoutingProtocol\n\n\n"
        "class Silent(RoutingProtocol):\n"
        "    def route_metric(self, dst):\n"
        "        return None\n"
    )
    assert "RL101" in rule_ids(lint_tree({PROTO: source}))


def test_rl102_missing_route_metric(lint_tree):
    source = (
        "from repro.routing.base import RoutingProtocol\n\n\n"
        "class Silent(RoutingProtocol):\n"
        "    def successor(self, dst):\n"
        "        return None\n"
    )
    assert "RL102" in rule_ids(lint_tree({PROTO: source}))


def test_rl102_wrong_tuple_shape(lint_tree):
    source = (
        "from repro.routing.base import RoutingProtocol\n\n\n"
        "class TwoTuple(RoutingProtocol):\n"
        "    def successor(self, dst):\n"
        "        return None\n\n"
        "    def route_metric(self, dst):\n"
        "        return (1, 2)\n"
    )
    assert "RL102" in rule_ids(lint_tree({PROTO: source}))


def test_conformance_via_inherited_base(lint_tree):
    # NsrProtocol-style: deriving from an analysed conforming class counts.
    derived = (
        "from repro.protocols.goodmod import GoodProtocol\n\n\n"
        "class Derived(GoodProtocol):\n"
        "    pass\n"
    )
    violations = lint_tree(
        {"protocols/goodmod.py": CONFORMING, "protocols/derived.py": derived}
    )
    assert rule_ids(violations) == []


def test_inheriting_only_the_base_stub_does_not_count(lint_tree):
    # RoutingProtocol's own stubs are exactly the silent opt-out the
    # rules forbid; an empty subclass must still be flagged.
    source = (
        "from repro.routing.base import RoutingProtocol\n\n\n"
        "class Empty(RoutingProtocol):\n"
        "    pass\n"
    )
    ids = rule_ids(lint_tree({PROTO: source}))
    assert "RL101" in ids and "RL102" in ids


def test_rl103_mutation_without_notify(lint_tree):
    source = (
        "from repro.routing.base import RoutingProtocol\n\n\n"
        "class Sneaky(RoutingProtocol):\n"
        "    def successor(self, dst):\n"
        "        return self.table.get(dst)\n\n"
        "    def route_metric(self, dst):\n"
        "        return None\n\n"
        "    def adopt(self, dst, via):\n"
        "        self.table[dst] = via\n"
    )
    assert "RL103" in rule_ids(lint_tree({PROTO: source}))


def test_rl103_delete_without_notify(lint_tree):
    source = (
        "from repro.routing.base import RoutingProtocol\n\n\n"
        "class Sneaky(RoutingProtocol):\n"
        "    def successor(self, dst):\n"
        "        return self.table.get(dst)\n\n"
        "    def route_metric(self, dst):\n"
        "        return None\n\n"
        "    def expire(self, dst):\n"
        "        del self.table[dst]\n"
    )
    assert "RL103" in rule_ids(lint_tree({PROTO: source}))


def test_rl103_notify_after_mutation_passes(lint_tree):
    assert "RL103" not in rule_ids(lint_tree({PROTO: CONFORMING}))


def test_rl103_notify_in_same_loop_passes(lint_tree):
    source = (
        "from repro.routing.base import RoutingProtocol\n\n\n"
        "class Looper(RoutingProtocol):\n"
        "    def successor(self, dst):\n"
        "        return self.table.get(dst)\n\n"
        "    def route_metric(self, dst):\n"
        "        return None\n\n"
        "    def refresh(self, updates):\n"
        "        for dst, via in updates:\n"
        "            self._notify_table_change(dst)\n"
        "            self.table[dst] = via\n"
    )
    assert "RL103" not in rule_ids(lint_tree({PROTO: source}))


def test_rl103_init_is_exempt(lint_tree):
    source = (
        "from repro.routing.base import RoutingProtocol\n\n\n"
        "class Fresh(RoutingProtocol):\n"
        "    def __init__(self, sim, node, metrics=None):\n"
        "        super().__init__(sim, node, metrics)\n"
        "        self.table = {}\n\n"
        "    def successor(self, dst):\n"
        "        return self.table.get(dst)\n\n"
        "    def route_metric(self, dst):\n"
        "        return None\n"
    )
    assert "RL103" not in rule_ids(lint_tree({PROTO: source}))


def test_rl103_untracked_attributes_ignored(lint_tree):
    # Only state the successor graph is built from is a "routing table";
    # per-neighbor bookkeeping may change without notifying.
    source = (
        "from repro.routing.base import RoutingProtocol\n\n\n"
        "class Bookkeeper(RoutingProtocol):\n"
        "    def successor(self, dst):\n"
        "        return self.table.get(dst)\n\n"
        "    def route_metric(self, dst):\n"
        "        return None\n\n"
        "    def heard(self, neighbor, now):\n"
        "        self.hello_heard[neighbor] = now\n"
    )
    assert "RL103" not in rule_ids(lint_tree({PROTO: source}))


def test_conformance_rules_skip_non_protocol_layers(lint_tree):
    # A RoutingProtocol subclass in a tools/ tree is out of scope.
    source = (
        "from repro.routing.base import RoutingProtocol\n\n\n"
        "class Scratch(RoutingProtocol):\n"
        "    pass\n"
    )
    assert rule_ids(lint_tree({"tools/scratch.py": source})) == []
