"""The lint selftest: exact finding set over the committed specimen tree.

This is the gate that keeps the *rules themselves* honest.  The src-tree
test proves the engine is quiet where it should be; this one proves it
is loud where it must be — every rule family fires on its known-bad
specimen at the pinned (rule, file, line), and the known-good twins
contribute nothing.  A rule silently losing its signal (the failure mode
of analysis refactors) shows up here as a missing tuple, and
over-firing shows up as an extra one.  CI runs this file as the
dedicated ``lint-selftest`` step.
"""

import pathlib

from repro.lint import Linter

FIXTURE_ROOT = pathlib.Path(__file__).resolve().parent / "fixtures" / "tree"

#: The complete expected output of the full engine over the specimen
#: tree: (rule, root-relative path, line).
EXPECTED = {
    ("RL002", "sim/clock_bad.py", 7),
    ("RL007", "protocols/legacy_bad.py", 3),
    ("RL201", "protocols/known_bad.py", 21),
    ("RL202", "mobility/streams_bad.py", 10),
    ("RL203", "mobility/streams_bad.py", 8),
    ("RL301", "protocols/known_bad.py", 25),
    ("RL401", "protocols/known_bad.py", 29),
}


def _findings(**run_kwargs):
    violations = Linter(root=FIXTURE_ROOT).run(**run_kwargs)
    return {
        (
            v.rule_id,
            pathlib.Path(v.path).resolve().relative_to(FIXTURE_ROOT).as_posix(),
            v.line,
        )
        for v in violations
    }


def test_every_rule_family_fires_exactly_where_pinned():
    assert _findings() == EXPECTED


def test_known_good_specimens_are_silent():
    good = {f for f in _findings() if "known_good" in f[1]}
    assert good == set()


def test_stage_split_partitions_the_findings():
    syntactic = _findings(stage="syntactic")
    program = _findings(stage="program")
    assert syntactic == {
        f for f in EXPECTED if f[0] in ("RL002", "RL007")
    }
    assert program == EXPECTED - syntactic
    assert syntactic | program == EXPECTED
