"""Determinism rules (RL001-RL006) against synthetic fixture trees."""

from tests.lint.conftest import rule_ids

PROTO = "protocols/fake.py"


def test_rl001_flags_random_import_in_protocols(lint_tree):
    violations = lint_tree({PROTO: "import random\nx = random.random()\n"})
    assert "RL001" in rule_ids(violations)


def test_rl001_flags_from_import(lint_tree):
    violations = lint_tree({PROTO: "from random import Random\n"})
    assert "RL001" in rule_ids(violations)


def test_rl001_allows_the_stream_factory(lint_tree):
    # sim/rng.py is the one sanctioned construction site.
    violations = lint_tree({"sim/rng.py": "import random\n"})
    assert "RL001" not in rule_ids(violations)


def test_rl001_applies_outside_deterministic_layers_too(lint_tree):
    # Ambient randomness is banned package-wide, not just in sim code.
    violations = lint_tree({"experiments/sweep.py": "import random\n"})
    assert "RL001" in rule_ids(violations)


def test_rl002_flags_wall_clock(lint_tree):
    violations = lint_tree(
        {PROTO: "import time\n\ndef f():\n    return time.time()\n"}
    )
    assert "RL002" in rule_ids(violations)


def test_rl002_flags_from_import_alias(lint_tree):
    source = "from time import monotonic as clock\n\ndef f():\n    return clock()\n"
    assert "RL002" in rule_ids(lint_tree({PROTO: source}))


def test_rl002_flags_datetime_now(lint_tree):
    source = (
        "from datetime import datetime\n\ndef f():\n    return datetime.now()\n"
    )
    assert "RL002" in rule_ids(lint_tree({PROTO: source}))


def test_rl002_allows_exec_layer(lint_tree):
    # exec/ orchestrates from the host's point of view (cache stamps, ETA).
    source = "import time\n\ndef stamp():\n    return time.time()\n"
    assert "RL002" not in rule_ids(lint_tree({"exec/cache.py": source}))


def test_rl003_flags_uuid4(lint_tree):
    source = "import uuid\n\ndef f():\n    return uuid.uuid4()\n"
    assert "RL003" in rule_ids(lint_tree({PROTO: source}))


def test_rl003_flags_secrets_import(lint_tree):
    assert "RL003" in rule_ids(lint_tree({PROTO: "import secrets\n"}))


def test_rl004_flags_id_call(lint_tree):
    source = "def f(items):\n    return sorted(items, key=id)[0] if id(items) else None\n"
    assert "RL004" in rule_ids(lint_tree({PROTO: source}))


def test_rl004_not_enforced_outside_deterministic_layers(lint_tree):
    # experiments/ stays unpatrolled (exec/ joined DETERMINISTIC_LAYERS
    # when campaign supervision grew its own RNG stream).
    source = "def f(x):\n    return id(x)\n"
    assert "RL004" not in rule_ids(lint_tree({"experiments/tables.py": source}))


def test_rl005_flags_hash_call(lint_tree):
    source = "def pick(name):\n    return hash(name) % 4\n"
    assert "RL005" in rule_ids(lint_tree({PROTO: source}))


def test_rl005_allows_dunder_hash(lint_tree):
    source = (
        "class Key:\n"
        "    def __hash__(self):\n"
        "        return hash((1, 2))\n"
    )
    assert "RL005" not in rule_ids(lint_tree({PROTO: source}))


def test_rl006_flags_for_over_set(lint_tree):
    source = (
        "def fanout(neighbors):\n"
        "    audience = set(neighbors)\n"
        "    for n in audience:\n"
        "        print(n)\n"
    )
    assert "RL006" in rule_ids(lint_tree({PROTO: source}))


def test_rl006_flags_keyed_min_over_set(lint_tree):
    source = (
        "def best(candidates):\n"
        "    pool = set(candidates)\n"
        "    return min(pool, key=lambda c: c.cost)\n"
    )
    assert "RL006" in rule_ids(lint_tree({PROTO: source}))


def test_rl006_flags_next_iter_set(lint_tree):
    source = "def any_one(s):\n    return next(iter(set(s)))\n"
    assert "RL006" in rule_ids(lint_tree({PROTO: source}))


def test_rl006_allows_sorted_wrapper(lint_tree):
    source = (
        "def fanout(neighbors):\n"
        "    audience = set(neighbors)\n"
        "    for n in sorted(audience):\n"
        "        print(n)\n"
    )
    assert "RL006" not in rule_ids(lint_tree({PROTO: source}))


def test_rl006_unkeyed_min_is_fine(lint_tree):
    # min() over a set without a key is value-determined, not order-
    # determined; only keyed selection breaks ties by iteration order.
    source = "def lowest(s):\n    return min(set(s))\n"
    assert "RL006" not in rule_ids(lint_tree({PROTO: source}))


def test_clean_protocol_file_is_clean(lint_tree):
    source = (
        "def choose(rng, options):\n"
        "    return options[rng.randrange(len(options))]\n"
    )
    assert rule_ids(lint_tree({PROTO: source})) == []


# ----------------------------------------------------------------------
# Relative imports (the _module_bindings blind spot, fixed in this PR)
# ----------------------------------------------------------------------

def test_rl002_sees_through_relative_import(lint_tree):
    # The old _module_bindings dropped every `node.level != 0` import, so
    # a wall clock re-imported relatively was invisible.
    files = {
        "sim/compat.py": "from time import time as now\n",
        "sim/clock.py": (
            "from .compat import now\n"
            "\n"
            "\n"
            "def tick():\n"
            "    return now()\n"
        ),
    }
    violations = lint_tree(files)
    assert "RL002" in rule_ids(violations)
    assert any(
        v.path.endswith("sim/clock.py") and "time.time" in v.message
        for v in violations
    )


def test_rl003_sees_through_two_level_relative_import(lint_tree):
    files = {
        "net/ids.py": "from uuid import uuid4 as fresh\n",
        "net/mac/frame.py": (
            "from ..ids import fresh\n"
            "\n"
            "\n"
            "def tag():\n"
            "    return fresh()\n"
        ),
    }
    assert "RL003" in rule_ids(lint_tree(files))


# ----------------------------------------------------------------------
# RL007 — deprecated legacy modules
# ----------------------------------------------------------------------

def test_rl007_flags_legacy_trace_import(lint_tree):
    source = "from repro.trace import TraceRecorder\n"
    violations = lint_tree({PROTO: source})
    assert "RL007" in rule_ids(violations)
    assert any("repro.obs" in v.message for v in violations)


def test_rl007_flags_plain_import_and_root_relative_spelling(lint_tree):
    assert "RL007" in rule_ids(lint_tree({PROTO: "import repro.trace\n"}))
    # Inside the lint root the shim's dotted name is just 'trace'.
    assert "RL007" in rule_ids(
        lint_tree({PROTO: "from trace import TraceRecorder\n"})
    )


def test_rl007_silent_on_the_replacement(lint_tree):
    source = "from repro.obs import TraceRecorder\n"
    assert "RL007" not in rule_ids(lint_tree({PROTO: source}))
