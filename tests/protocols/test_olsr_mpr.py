"""Unit and property tests for OLSR neighbor state and MPR selection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.olsr.messages import OlsrHello
from repro.protocols.olsr.neighbor import NeighborState


def _hello(origin, sym=(), heard=(), mprs=()):
    return OlsrHello(origin, list(sym), list(heard), set(mprs))


def test_link_becomes_symmetric_after_mutual_hello():
    state = NeighborState(owner=0)
    # Neighbor 1's hello doesn't mention us yet: heard only.
    state.on_hello(_hello(1), now=0.0, hold_time=6.0)
    assert state.symmetric_neighbors(0.1) == []
    assert state.heard_only_neighbors(0.1) == [1]
    # Now neighbor 1 lists us: symmetric.
    state.on_hello(_hello(1, heard=[0]), now=1.0, hold_time=6.0)
    assert state.symmetric_neighbors(1.1) == [1]


def test_links_expire_after_hold_time():
    state = NeighborState(owner=0)
    state.on_hello(_hello(1, sym=[0]), now=0.0, hold_time=6.0)
    assert state.symmetric_neighbors(5.0) == [1]
    changed = state.expire(7.0)
    assert changed
    assert state.symmetric_neighbors(7.0) == []


def test_mpr_selector_tracking():
    state = NeighborState(owner=0)
    state.on_hello(_hello(1, sym=[0], mprs=[0]), now=0.0, hold_time=6.0)
    assert state.selectors(1.0) == [1]
    # Next hello without us in the MPR set clears it.
    state.on_hello(_hello(1, sym=[0]), now=2.0, hold_time=6.0)
    assert state.selectors(2.5) == []


def test_mpr_selection_covers_two_hop_neighborhood():
    state = NeighborState(owner=0)
    # Neighbors 1 and 2; 1 reaches {10, 11}, 2 reaches {11, 12}.
    state.on_hello(_hello(1, sym=[0, 10, 11]), now=0.0, hold_time=6.0)
    state.on_hello(_hello(2, sym=[0, 11, 12]), now=0.0, hold_time=6.0)
    mprs = state.select_mprs(1.0)
    covered = set()
    for m in mprs:
        covered |= state.two_hop[m][0]
    assert {10, 11, 12} <= covered


def test_sole_provider_is_mandatory_mpr():
    state = NeighborState(owner=0)
    state.on_hello(_hello(1, sym=[0, 10]), now=0.0, hold_time=6.0)
    state.on_hello(_hello(2, sym=[0, 10, 11]), now=0.0, hold_time=6.0)
    mprs = state.select_mprs(1.0)
    assert 2 in mprs  # only node 2 covers 11


def test_no_two_hop_nodes_no_mprs():
    state = NeighborState(owner=0)
    state.on_hello(_hello(1, sym=[0]), now=0.0, hold_time=6.0)
    assert state.select_mprs(1.0) == set()


def test_greedy_prefers_high_coverage():
    state = NeighborState(owner=0)
    state.on_hello(_hello(1, sym=[0, 10, 11, 12]), now=0.0, hold_time=6.0)
    state.on_hello(_hello(2, sym=[0, 10]), now=0.0, hold_time=6.0)
    state.on_hello(_hello(3, sym=[0, 11]), now=0.0, hold_time=6.0)
    mprs = state.select_mprs(1.0)
    assert mprs == {1}


@settings(max_examples=40, deadline=None)
@given(
    data=st.dictionaries(
        keys=st.integers(1, 8),
        values=st.sets(st.integers(10, 25), max_size=6),
        max_size=8,
    )
)
def test_property_mpr_cover(data):
    """Whatever the two-hop structure, selected MPRs cover every two-hop
    node that is reachable through some symmetric neighbor."""
    state = NeighborState(owner=0)
    for neighbor, two_hop in data.items():
        state.on_hello(_hello(neighbor, sym=[0] + sorted(two_hop)),
                       now=0.0, hold_time=6.0)
    mprs = state.select_mprs(1.0)
    sym = set(state.symmetric_neighbors(1.0))
    must_cover = set()
    for neighbor, two_hop in data.items():
        must_cover |= {n for n in two_hop if n not in sym}
    covered = set()
    for m in mprs:
        covered |= {n for n in state.two_hop[m][0] if n not in sym}
    assert must_cover <= covered
    assert mprs <= sym
