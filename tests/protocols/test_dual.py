"""Behavioural tests for the DUAL substrate."""

from repro.mobility import StaticPlacement
from repro.protocols.dual import DualProtocol
from repro.protocols.dual.protocol import INFINITY
from repro.routing import LoopChecker
from tests.conftest import Network


def _line(count=4, config=None, seed=1):
    return Network(DualProtocol, StaticPlacement.line(count, 200.0),
                   config=config, seed=seed)


def test_routes_converge_proactively():
    net = _line(4)
    net.run(8.0)
    # Every node knows every other without any data being sent.
    for src in range(4):
        for dst in range(4):
            if src == dst:
                continue
            state = net.protocols[src].dests.get(dst)
            assert state is not None and state.dist < INFINITY, (src, dst)


def test_distances_are_shortest_paths():
    net = _line(5)
    net.run(10.0)
    for src in range(5):
        for dst in range(5):
            if src != dst:
                assert net.protocols[src].dests[dst].dist == abs(src - dst)


def test_data_delivery_after_convergence():
    net = _line(4)
    net.run(8.0)
    net.send(0, 3)
    net.run(1.0)
    assert len(net.delivered_to(3)) == 1


def test_data_before_convergence_dropped():
    net = _line(4)
    net.send(0, 3)
    net.run(0.01)
    assert net.metrics.data_dropped.get("no_route", 0) >= 1


def test_feasible_distance_invariant():
    net = _line(5)
    net.run(10.0)
    for protocol in net.protocols.values():
        for state in protocol.dests.values():
            if state.dist < INFINITY:
                assert state.fd <= state.dist


def test_local_computation_on_feasible_change():
    """A shorter advertisement below fd is adopted without any query."""
    net = _line(3)
    net.run(8.0)
    queries_before = net.metrics.control_initiated.get("query", 0)
    protocol = net.protocols[0]
    # Fake a better advertisement from node 1 for destination 2.
    from repro.protocols.dual.messages import DualUpdate

    protocol.on_packet(DualUpdate(1, {2: 0}), from_id=1)
    assert protocol.dests[2].dist == 1
    assert net.metrics.control_initiated.get("query", 0) == queries_before


def test_diffusing_computation_on_partition():
    """Cutting the only route forces queries, and the computation
    terminates with the route withdrawn."""
    net = _line(3)
    net.run(8.0)
    assert net.protocols[0].dests[2].dist == 2
    # Node 2 disappears.
    net.placement.move(2, 90000.0, 0.0)
    net.run(15.0)
    assert net.metrics.control_initiated.get("query", 0) > 0
    state = net.protocols[0].dests[2]
    assert not state.active
    assert state.dist == INFINITY


def test_route_repairs_after_node_returns():
    net = _line(3)
    net.run(8.0)
    net.placement.move(2, 90000.0, 0.0)
    net.run(12.0)
    net.placement.move(2, 400.0, 0.0)
    net.run(12.0)
    assert net.protocols[0].dests[2].dist == 2
    net.send(0, 2)
    net.run(1.0)
    assert len(net.delivered_to(2)) == 1


def test_successor_graph_acyclic_throughout_churn():
    placement = StaticPlacement.grid(3, 3, 200.0)
    net = Network(DualProtocol, placement, seed=4)
    checker = LoopChecker(list(net.protocols.values()),
                          check_ordering=False).install()
    net.run(8.0)
    net.placement.move(4, 50000.0, 0.0)
    net.run(10.0)
    net.placement.move(4, 200.0, 200.0)
    net.run(10.0)
    assert checker.checks_run > 0


def test_proactive_overhead_without_traffic():
    """DUAL pays control cost with zero data — the on-demand motivation."""
    net = _line(4)
    net.run(10.0)
    assert net.metrics.control_transmissions.get("hello", 0) > 0
    assert net.metrics.control_transmissions.get("update", 0) > 0
