"""Tests for AODV's hello-based link sensing mode (GloMoSim-era config)."""

from repro.mobility import StaticPlacement
from repro.protocols.aodv import AodvConfig, AodvProtocol
from tests.conftest import Network


def _net(count=4, **cfg):
    config = AodvConfig(use_hello=True, hello_interval=0.5,
                        allowed_hello_loss=2, **cfg)
    return Network(AodvProtocol, StaticPlacement.line(count, 200.0),
                   config=config)


def test_hellos_transmitted_periodically():
    net = _net(3)
    net.run(5.0)
    assert net.metrics.control_transmissions.get("hello", 0) >= 3 * 8


def test_default_mode_sends_no_hellos():
    net = Network(AodvProtocol, StaticPlacement.line(3, 200.0))
    net.run(5.0)
    assert net.metrics.control_transmissions.get("hello", 0) == 0


def test_hello_creates_one_hop_routes():
    net = _net(3)
    net.run(3.0)
    entry = net.protocols[1].table.get(0)
    assert entry is not None and entry.valid and entry.hops == 1


def test_silent_neighbor_triggers_route_invalidation():
    net = _net(4)
    net.send(0, 3)
    net.run(2.0)
    assert net.protocols[2].table[3].valid
    # Node 3 vanishes; within allowed_hello_loss * interval node 2 must
    # notice even with NO data flowing (the point of hellos).
    net.placement.move(3, 90000.0, 0.0)
    net.run(4.0)
    assert not net.protocols[2].table[3].valid


def test_delivery_still_works_in_hello_mode():
    net = _net(4)
    net.send(0, 3)
    net.run(3.0)
    assert len(net.delivered_to(3)) == 1


def test_hello_mode_costs_show_in_network_load():
    from repro import ScenarioConfig, run_scenario

    base = dict(num_nodes=20, width=900.0, height=300.0, num_flows=3,
                duration=20.0, pause_time=0.0, seed=3)
    ll = run_scenario(ScenarioConfig(protocol="aodv", **base))
    hello = run_scenario(ScenarioConfig(
        protocol="aodv",
        protocol_config=AodvConfig(use_hello=True), **base))
    assert hello.network_load > ll.network_load
