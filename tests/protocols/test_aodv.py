"""Behavioural tests for the AODV baseline."""

from repro.mobility import StaticPlacement
from repro.protocols.aodv import AodvConfig, AodvProtocol
from repro.protocols.aodv.messages import AodvRreq
from repro.routing import LoopChecker
from tests.conftest import Network


def _line(count=4, config=None, seed=1):
    return Network(AodvProtocol, StaticPlacement.line(count, 200.0),
                   config=config, seed=seed)


def test_discovery_and_delivery():
    net = _line(4)
    net.send(0, 3)
    net.run(5.0)
    assert len(net.delivered_to(3)) == 1
    entry = net.protocols[0].table[3]
    assert entry.valid
    assert entry.hops == 3
    assert entry.next_hop == 1


def test_source_increments_own_seq_per_discovery():
    net = _line(3)
    assert net.protocols[0].own_seq == 0
    net.send(0, 2)
    net.run(5.0)
    assert net.protocols[0].own_seq >= 1


def test_destination_increments_before_reply():
    net = _line(3)
    net.send(0, 2)
    net.run(5.0)
    assert net.protocols[2].own_seq >= 1


def test_reverse_route_built():
    net = _line(4)
    net.send(0, 3)
    net.run(5.0)
    entry = net.protocols[2].table.get(0)
    assert entry is not None and entry.next_hop == 1


def test_buffered_packets_flushed_after_discovery():
    net = _line(4)
    for _ in range(4):
        net.send(0, 3)
    net.run(5.0)
    assert len(net.delivered_to(3)) == 4


def test_route_break_increments_destination_seq():
    """The AODV behaviour LDR removes: a relay bumps D's number on break."""
    net = _line(4)
    net.send(0, 3)
    net.run(1.0)
    seq_before = net.protocols[2].table[3].seq
    net.placement.move(3, 90000.0, 0.0)
    net.send(0, 3)
    net.run(5.0)
    entry = net.protocols[2].table[3]
    assert not entry.valid
    assert entry.seq > seq_before


def test_rerr_propagates_and_invalidates():
    net = _line(5)
    net.send(0, 4)
    net.run(1.0)
    net.placement.move(4, 90000.0, 0.0)
    net.send(0, 4)
    net.run(6.0)
    assert not net.protocols[1].table[4].valid


def test_intermediate_reply_with_fresh_route():
    net = _line(5)
    net.send(0, 4)
    net.run(1.0)
    rreps_before = net.metrics.control_initiated.get("rrep", 0)
    # Node 2 holds a fresh active route; a new discovery from node 0 with
    # its stored (older-or-equal) seq can be answered downstream.
    net.protocols[0].table[4].valid = False
    net.send(0, 4)
    net.run(1.0)
    assert len(net.delivered_to(4)) == 2
    assert net.metrics.control_initiated["rrep"] > rreps_before


def test_stale_intermediate_cannot_reply():
    """A node with an older destination seq must forward, not answer —
    the inhibition LDR's Section 1 describes."""
    net = _line(4)
    net.send(0, 3)
    net.run(1.0)
    # Simulate a break at node 0: it bumps its stored seq for 3.
    protocol = net.protocols[0]
    entry = protocol.table[3]
    entry.valid = False
    entry.seq += 5  # far beyond anything node 1/2 have stored
    net.send(0, 3)
    net.run(5.0)
    # Only the destination itself could answer (its reply carries a number
    # at least as large as the request's).
    assert len(net.delivered_to(3)) == 2
    assert net.protocols[0].table[3].seq >= entry.seq


def test_expanding_ring_reaches_far_destination():
    net = _line(7, config=AodvConfig(ttl_start=1, ttl_increment=1,
                                     ttl_threshold=2, net_diameter=12))
    net.send(0, 6)
    net.run(10.0)
    assert len(net.delivered_to(6)) == 1
    assert net.metrics.control_initiated["rreq"] > 1


def test_duplicate_rreqs_ignored():
    net = _line(3)
    protocol = net.protocols[1]
    rreq = AodvRreq(src=0, src_seq=1, rreq_id=5, dst=2, dst_seq=0,
                    unknown_seq=True, hop_count=0, ttl=5)
    protocol.on_packet(rreq, from_id=0)
    tx_after_first = net.metrics.control_transmissions.get("rreq", 0)
    protocol.on_packet(rreq.copy(), from_id=0)
    net.run(1.0)
    # The duplicate triggered no second relay (one rebroadcast only).
    assert net.metrics.control_transmissions.get("rreq", 0) <= tx_after_first + 1


def test_no_route_found_drops_buffer():
    placement = StaticPlacement({0: (0, 0), 1: (200, 0), 2: (9000, 0)})
    net = Network(AodvProtocol, placement)
    net.send(0, 2)
    net.run(30.0)
    assert net.delivered_to(2) == []
    assert net.metrics.data_dropped["no_route_found"] == 1


def test_aodv_successor_graph_acyclic_under_churn():
    placement = StaticPlacement.grid(3, 3, spacing=200.0)
    net = Network(AodvProtocol, placement, seed=2)
    checker = LoopChecker(list(net.protocols.values()),
                          check_ordering=False).install()
    net.send(0, 8)
    net.send(6, 2)
    net.run(2.0)
    net.placement.move(4, 50000.0, 0.0)
    net.send(0, 8)
    net.run(5.0)
    assert checker.checks_run > 0


def test_own_sequence_value_reported():
    net = _line(3)
    net.send(0, 2)
    net.run(3.0)
    assert net.protocols[2].own_sequence_value() == net.protocols[2].own_seq
