"""Behavioural tests for NSR (two-hop-aware source routing)."""

from repro.mobility import StaticPlacement
from repro.protocols.nsr import NsrConfig, NsrProtocol
from repro.protocols.nsr.protocol import NsrRrep, NsrRreq
from tests.conftest import Network


def _line(count=4, config=None, seed=1):
    return Network(NsrProtocol, StaticPlacement.line(count, 200.0),
                   config=config, seed=seed)


def test_discovery_and_delivery_like_dsr():
    net = _line(4)
    net.send(0, 3)
    net.run(5.0)
    delivered = net.delivered_to(3)
    assert len(delivered) == 1
    assert delivered[0].source_route == [0, 1, 2, 3]


def test_neighbor_lists_piggybacked_on_control():
    net = _line(4)
    net.send(0, 3)
    net.run(5.0)
    # Relays learned two-hop knowledge from the traversing RREQ/RREP.
    assert net.protocols[2].two_hop  # knows someone's neighborhood
    # Node 2 heard node 1's list, which includes node 0.
    entry = net.protocols[2].two_hop.get(1)
    assert entry is not None and 0 in entry[0]


def test_one_hop_sensing_from_receptions():
    net = _line(3)
    net.send(0, 2)
    net.run(3.0)
    assert 1 in net.protocols[0].one_hop
    assert set(net.protocols[1]._current_neighbors()) >= {0, 2}


def test_local_patch_bridges_broken_hop():
    """Diamond: route goes 0-1-3; link 1-3 breaks; node 1 knows (from
    piggybacked neighborhoods) that its neighbor 2 borders 3 and patches
    the route to 0-1-2-3 without a new discovery."""
    placement = StaticPlacement({0: (0, 0), 1: (200, 0), 2: (200, 200),
                                 3: (400, 0)})
    net = Network(NsrProtocol, placement)
    net.send(0, 3)
    net.run(3.0)
    assert len(net.delivered_to(3)) == 1
    # Teach node 1 the 2-3 adjacency explicitly (as a traversing control
    # packet would), then break 1-3 by moving 3 out of 1's reach but
    # within 2's.
    net.protocols[1]._learn_neighborhoods({2: (1, 3)})
    net.placement.move(3, 330.0, 260.0)  # ~290 m from 1, ~143 m from 2
    rreqs_before = net.metrics.control_transmissions.get("rreq", 0)
    net.send(0, 3)
    net.run(5.0)
    assert len(net.delivered_to(3)) == 2
    assert net.protocols[1].patches >= 1
    # No new flood was needed.
    assert net.metrics.control_transmissions.get("rreq", 0) == rreqs_before


def test_patch_falls_back_to_salvage_or_rerr():
    """Without usable two-hop knowledge the DSR machinery takes over."""
    net = _line(4)
    net.send(0, 3)
    net.run(1.0)
    net.placement.move(3, 90000.0, 0.0)
    net.send(0, 3)
    net.run(8.0)
    # The packet could not be patched (nobody borders the vanished node):
    # standard DSR error handling removed the link from caches.
    assert net.protocols[2].cache.lookup(3) is None
    assert net.protocols[2].patches == 0


def test_message_subclasses_carry_neighborhoods():
    rreq = NsrRreq(0, 1, 5, [0], neighborhoods={0: (1, 2)})
    clone = rreq.copy()
    assert clone.neighborhoods == {0: (1, 2)}
    assert clone.size_bytes > 16
    rrep = NsrRrep([0, 1, 2], [2, 1, 0], neighborhoods={1: (0, 2)})
    assert rrep.copy().neighborhoods == {1: (0, 2)}


def test_two_hop_knowledge_expires():
    net = _line(3, config=NsrConfig(two_hop_hold_time=1.0))
    protocol = net.protocols[0]
    protocol._learn_neighborhoods({5: (6, 7)})
    assert protocol._knows_link(5, 6)
    net.run(2.0)
    assert not protocol._knows_link(5, 6)
