"""Behavioural tests for the TORA substrate."""

from repro.mobility import StaticPlacement
from repro.protocols.tora import ToraConfig, ToraProtocol
from tests.conftest import Network


def _line(count=4, config=None, seed=1):
    return Network(ToraProtocol, StaticPlacement.line(count, 200.0),
                   config=config, seed=seed)


def test_route_creation_and_delivery():
    net = _line(4)
    net.run(2.0)  # beacons establish neighbors
    net.send(0, 3)
    net.run(5.0)
    assert len(net.delivered_to(3)) == 1


def test_heights_decrease_toward_destination():
    net = _line(4)
    net.run(2.0)
    net.send(0, 3)
    net.run(5.0)
    heights = [net.protocols[i].dests[3].height for i in range(4)]
    assert all(h is not None for h in heights)
    for closer, farther in zip(heights[1:], heights[:-1]):
        assert closer < farther  # downhill toward node 3


def test_destination_height_is_zero_level():
    net = _line(3)
    net.run(2.0)
    net.send(0, 2)
    net.run(5.0)
    tau, oid, r, delta, node_id = net.protocols[2].dests[2].height
    assert (tau, oid, r, delta) == (0.0, 0, 0, 0)
    assert node_id == 2


def test_data_flows_downhill():
    net = _line(5)
    net.run(2.0)
    net.send(0, 4)
    net.run(5.0)
    assert net.protocols[0].successor(4) == 1
    assert net.protocols[2].successor(4) == 3


def test_link_reversal_on_break():
    """Break the path mid-chain; the reversal + re-query restores routes."""
    net = _line(4)
    net.run(2.0)
    net.send(0, 3)
    net.run(3.0)
    assert len(net.delivered_to(3)) == 1
    # Node 2 moves next to node 1's other side: topology now 0-1-2? no —
    # move node 2 away entirely and bring it back between 1 and 3 is the
    # same line; instead park node 2 out of range and give the DAG a new
    # bridge node... simplest honest check: break 2-3 and verify node 2
    # raises its reference level.
    old_height = net.protocols[2].dests[3].height
    net.placement.move(3, 90000.0, 0.0)
    net.send(0, 3)
    net.run(8.0)
    new_height = net.protocols[2].dests[3].height
    assert new_height is None or new_height > old_height


def test_qry_gives_up_without_route():
    placement = StaticPlacement({0: (0, 0), 1: (200, 0), 2: (9000, 0)})
    net = Network(ToraProtocol, placement,
                  config=ToraConfig(qry_retries=2, qry_retry_interval=0.3))
    net.run(2.0)
    net.send(0, 2)
    net.run(10.0)
    assert net.delivered_to(2) == []
    assert net.metrics.data_dropped["no_route_found"] == 1


def test_multiple_sources_share_the_dag():
    net = _line(5)
    net.run(2.0)
    net.send(0, 4)
    net.send(1, 4)
    net.send(2, 4)
    net.run(5.0)
    assert len(net.delivered_to(4)) == 3


def test_stale_route_dissolves():
    net = _line(3, config=ToraConfig(stale_route_timeout=2.0))
    net.run(2.0)
    net.send(0, 2)
    net.run(3.0)
    assert net.protocols[0].dests[2].height is not None
    net.placement.move(2, 90000.0, 0.0)
    net.placement.move(1, 90000.0, 500.0)  # isolate node 0 entirely
    net.run(15.0)
    assert net.protocols[0].dests[2].height is None


def test_dag_is_acyclic_by_heights():
    """Successor edges always point strictly downhill, so no cycles."""
    net = Network(ToraProtocol, StaticPlacement.grid(3, 3, 200.0), seed=3)
    net.run(2.0)
    for src in (0, 2, 6):
        net.send(src, 8)
    net.run(5.0)
    for protocol in net.protocols.values():
        state = protocol.dests.get(8)
        if state is None or state.height is None:
            continue
        nxt = protocol.successor(8)
        if nxt is None:
            continue
        neighbor_height = state.neighbor_heights[nxt]
        assert neighbor_height < state.height
