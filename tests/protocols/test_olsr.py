"""Behavioural tests for the OLSR baseline."""

from repro.mobility import StaticPlacement
from repro.protocols.olsr import OlsrConfig, OlsrProtocol
from tests.conftest import Network


def _line(count=4, config=None, seed=1):
    return Network(OlsrProtocol, StaticPlacement.line(count, 200.0),
                   config=config, seed=seed)


def test_hellos_establish_symmetric_links():
    net = _line(3)
    net.run(8.0)
    assert net.protocols[1].neighbors.symmetric_neighbors(net.sim.now) \
        and set(net.protocols[1].neighbors.symmetric_neighbors(net.sim.now)) == {0, 2}


def test_tc_messages_build_topology():
    net = _line(4)
    net.run(15.0)
    # Node 0 must know a route to 3 (learned via TCs flooded through MPRs).
    assert net.protocols[0].routes.get(3) is not None


def test_routes_are_shortest_paths():
    net = Network(OlsrProtocol, StaticPlacement.grid(3, 3, 200.0))
    net.run(15.0)
    routes = net.protocols[0].routes
    # Manhattan distances on the grid (only orthogonal links at 200 m
    # spacing with 275 m range).
    assert routes[1][1] == 1
    assert routes[4][1] == 2
    assert routes[8][1] == 4


def test_data_delivery_after_convergence():
    net = _line(4)
    net.run(12.0)
    net.send(0, 3)
    net.run(2.0)
    assert len(net.delivered_to(3)) == 1


def test_data_before_convergence_dropped():
    net = _line(4)
    net.send(0, 3)  # no routes yet: proactive protocols don't buffer
    net.run(1.0)
    assert net.delivered_to(3) == []
    assert net.metrics.data_dropped["no_route"] >= 1


def test_control_overhead_is_periodic():
    net = _line(4, config=OlsrConfig(hello_interval=1.0, tc_interval=2.0))
    net.run(20.0)
    hellos = net.metrics.control_transmissions.get("hello", 0)
    assert hellos >= 4 * 15  # 4 nodes, ~20 hellos each minus startup jitter


def test_mprs_selected_on_line():
    net = _line(4)
    net.run(10.0)
    # On a line, middle nodes are MPRs for their neighbors.
    assert 1 in net.protocols[0].neighbors.mprs
    assert 2 in net.protocols[3].neighbors.mprs


def test_tc_only_from_selected_mprs():
    net = _line(4)
    net.run(15.0)
    # End nodes are nobody's MPR: they never originate TCs.
    # (TC count is tracked via control_initiated per node indirectly;
    # check their selector sets instead.)
    assert net.protocols[0].neighbors.selectors(net.sim.now) == []
    assert net.protocols[1].neighbors.selectors(net.sim.now) != []


def test_link_break_recovery():
    placement = StaticPlacement({0: (0, 0), 1: (200, 0), 2: (400, 0),
                                 3: (200, 200)})
    net = Network(OlsrProtocol, placement)
    net.run(15.0)
    assert net.protocols[0].routes.get(2) is not None
    # Break node 1 (the relay); route must re-form via node 3 eventually
    # ... 0-3 distance is 283 > 275: instead move 3 to bridge 0 and 2.
    net.placement.move(1, 50000.0, 0.0)
    net.placement.move(3, 200.0, 100.0)
    net.run(20.0)
    route = net.protocols[0].routes.get(2)
    assert route is not None
    assert route[0] == 3


def test_jitter_queue_in_use():
    net = _line(2, config=OlsrConfig(max_jitter=0.015))
    proto = net.protocols[0]
    assert proto.jitter_queue.max_jitter == 0.015


def test_duplicate_tc_not_reforwarded():
    net = _line(5)
    net.run(30.0)
    tc_tx = net.metrics.control_transmissions.get("tc", 0)
    tc_init = net.metrics.control_initiated.get("tc", 0)
    # MPR flooding bounds retransmissions: every initiated TC is forwarded
    # at most once per MPR node, far below full flooding by all 5 nodes.
    assert tc_tx <= tc_init * 4
