"""Unit tests for baseline-protocol message structures."""

from repro.protocols.aodv.messages import AodvRerr, AodvRrep, AodvRreq
from repro.protocols.dsr.messages import DsrRerr, DsrRrep, DsrRreq
from repro.protocols.olsr.messages import OlsrHello, OlsrTc


def test_aodv_rreq_copy_independent():
    rreq = AodvRreq(src=1, src_seq=5, rreq_id=2, dst=9, dst_seq=3,
                    unknown_seq=False, hop_count=1, ttl=4)
    clone = rreq.copy()
    clone.hop_count += 1
    clone.ttl -= 1
    assert (rreq.hop_count, rreq.ttl) == (1, 4)
    assert clone.kind == "rreq" and clone.is_control


def test_aodv_rrep_fields():
    rrep = AodvRrep(src=1, dst=9, dst_seq=7, hop_count=2, lifetime=3.0)
    clone = rrep.copy()
    assert (clone.dst, clone.dst_seq, clone.hop_count) == (9, 7, 2)


def test_aodv_rerr_size_scales():
    assert AodvRerr([(1, 2), (3, 4)]).size_bytes > AodvRerr([(1, 2)]).size_bytes


def test_dsr_rreq_route_accumulation_is_copied():
    rreq = DsrRreq(src=0, rreq_id=1, target=5, route=[0], ttl=8)
    clone = rreq.copy()
    clone.route.append(1)
    assert rreq.route == [0]
    assert clone.size_bytes >= rreq.size_bytes


def test_dsr_rreq_size_grows_with_route():
    short = DsrRreq(src=0, rreq_id=1, target=5, route=[0])
    long = DsrRreq(src=0, rreq_id=1, target=5, route=[0, 1, 2, 3])
    assert long.size_bytes > short.size_bytes


def test_dsr_rrep_holds_route_and_reply_path():
    rrep = DsrRrep([0, 1, 2], [2, 1, 0])
    clone = rrep.copy()
    clone.reply_path.pop()
    assert rrep.reply_path == [2, 1, 0]


def test_dsr_rerr_identifies_link():
    rerr = DsrRerr(3, 4, [3, 2, 1, 0])
    assert (rerr.from_node, rerr.to_node) == (3, 4)
    assert rerr.copy().reply_path == [3, 2, 1, 0]


def test_olsr_hello_size_scales_with_neighbors():
    small = OlsrHello(0, [1], [], set())
    big = OlsrHello(0, [1, 2, 3, 4], [5, 6], {1, 2})
    assert big.size_bytes > small.size_bytes
    assert big.kind == "hello"


def test_olsr_tc_copy_preserves_ansn():
    tc = OlsrTc(origin=3, ansn=12, selectors=[1, 2], ttl=10)
    clone = tc.copy()
    clone.ttl -= 1
    assert tc.ttl == 10
    assert clone.ansn == 12 and clone.selectors == [1, 2]
