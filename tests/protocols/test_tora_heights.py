"""Property tests on TORA's height ordering."""

from hypothesis import given
from hypothesis import strategies as st

heights = st.tuples(
    st.floats(0, 100),      # tau (reference level time)
    st.integers(0, 20),     # oid
    st.integers(0, 1),      # r
    st.integers(0, 50),     # delta
    st.integers(0, 20),     # node id
)


@given(heights, heights)
def test_height_comparison_is_total_order(a, b):
    assert (a < b) + (a > b) + (a == b) == 1


@given(heights)
def test_new_reference_level_dominates_older(h):
    """A reference level taken at a later time beats any height from an
    earlier level — the property link reversal relies on."""
    tau, oid, r, delta, node = h
    newer = (tau + 1.0, node, 0, 0, node)
    assert newer > h


@given(heights)
def test_delta_orders_within_level(h):
    tau, oid, r, delta, node = h
    downstream = (tau, oid, r, delta, node)
    upstream = (tau, oid, r, delta + 1, node)
    assert upstream > downstream


def test_zero_height_is_global_minimum():
    zero = (0.0, 0, 0, 0, 0)
    assert zero <= (0.0, 0, 0, 0, 1)
    assert zero < (0.0, 0, 0, 1, 0)
    assert zero < (5.0, 1, 0, 0, 0)
