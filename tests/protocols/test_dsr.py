"""Behavioural tests for the DSR baseline."""

from repro.mobility import StaticPlacement
from repro.protocols.dsr import DsrConfig, DsrProtocol
from tests.conftest import Network


def _line(count=4, config=None, seed=1):
    return Network(DsrProtocol, StaticPlacement.line(count, 200.0),
                   config=config, seed=seed)


def test_discovery_and_source_routed_delivery():
    net = _line(4)
    net.send(0, 3)
    net.run(5.0)
    delivered = net.delivered_to(3)
    assert len(delivered) == 1
    assert delivered[0].source_route == [0, 1, 2, 3]


def test_origin_caches_discovered_route():
    net = _line(4)
    net.send(0, 3)
    net.run(5.0)
    assert net.protocols[0].cache.lookup(3) == [0, 1, 2, 3]


def test_relays_learn_route_suffix_from_rrep():
    net = _line(4)
    net.send(0, 3)
    net.run(5.0)
    # Relay 1 saw the RREP carrying [0,1,2,3]; it caches its suffix.
    assert net.protocols[1].cache.lookup(3) == [1, 2, 3]


def test_cached_route_skips_discovery():
    net = _line(4)
    net.send(0, 3)
    net.run(5.0)
    rreqs = net.metrics.control_transmissions["rreq"]
    net.send(0, 3)
    net.run(5.0)
    assert len(net.delivered_to(3)) == 2
    assert net.metrics.control_transmissions["rreq"] == rreqs  # no new flood


def test_cache_reply_by_intermediate():
    net = _line(5)
    net.send(0, 4)
    net.run(5.0)
    # Node 1 now caches [1,2,3,4].  A fresh discovery by a new node that
    # reaches node 1 can be answered from cache: force node 0 to forget.
    net.protocols[0].cache._routes.clear()
    rreqs_before = net.metrics.control_transmissions["rreq"]
    net.send(0, 4)
    net.run(5.0)
    assert len(net.delivered_to(4)) == 2
    # Non-propagating first attempt (TTL 1) sufficed: at most one RREQ tx.
    assert net.metrics.control_transmissions["rreq"] - rreqs_before <= 1


def test_broken_link_rerr_and_cache_pruning():
    net = _line(4)
    net.send(0, 3)
    net.run(1.0)
    assert net.protocols[0].cache.lookup(3) is not None
    net.placement.move(3, 90000.0, 0.0)
    net.send(0, 3)
    net.run(8.0)
    # Node 2 (break detector) pruned the link; the RERR reached node 0.
    assert net.protocols[2].cache.lookup(3) is None
    assert net.protocols[0].cache.lookup(3) is None


def test_salvage_uses_alternate_route():
    # Diamond: 0-1-3 and 0-2-3; break 1-3 after caching both at node 0.
    placement = StaticPlacement({0: (0, 0), 1: (200, 0), 2: (0, 200),
                                 3: (200, 200)})
    net = Network(DsrProtocol, placement)
    net.send(0, 3)
    net.run(2.0)
    assert len(net.delivered_to(3)) == 1


def test_no_route_gives_up_after_retries():
    placement = StaticPlacement({0: (0, 0), 1: (200, 0), 2: (9000, 0)})
    config = DsrConfig(rreq_retries=2, discovery_timeout=0.2,
                       max_discovery_timeout=0.5)
    net = Network(DsrProtocol, placement, config=config)
    net.send(0, 2)
    net.run(10.0)
    assert net.delivered_to(2) == []
    assert net.metrics.data_dropped["no_route_found"] == 1


def test_rreq_does_not_revisit_nodes():
    """Accumulated routes never contain a node twice (loop-free replies)."""
    net = Network(DsrProtocol, StaticPlacement.grid(3, 3, 200.0))
    net.send(0, 8)
    net.send(2, 6)
    net.run(5.0)
    for protocol in net.protocols.values():
        for entries in protocol.cache._routes.values():
            for _, route in entries:
                assert len(set(route)) == len(route)


def test_stale_cache_is_dsr_weakness():
    """After mobility invalidates a cached route, DSR still tries it and
    fails on first use — the behaviour behind the paper's DSR results."""
    net = _line(4)
    net.send(0, 3)
    net.run(1.0)
    net.placement.move(3, 90000.0, 0.0)
    # Cache still claims a route exists.
    assert net.protocols[0].cache.lookup(3) is not None
    net.send(0, 3)
    net.run(0.05)
    # The packet went straight out on the stale source route (no discovery
    # started yet).
    assert net.protocols[0]._discoveries == {}
