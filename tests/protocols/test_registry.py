"""Cross-protocol consistency: everything in the registry honours the
RoutingProtocol contract and basic conservation laws."""

import pytest

from repro import ScenarioConfig, run_scenario
from repro.experiments.scenario import PROTOCOLS

ALL_NAMES = sorted(PROTOCOLS)


def test_every_registry_entry_is_well_formed():
    for name, (protocol_cls, config_factory) in PROTOCOLS.items():
        assert callable(config_factory)
        config = config_factory()
        assert config is not None
        # 'dsr7' intentionally reports name 'dsr' (same engine).
        assert protocol_cls.name in (name, "dsr")


@pytest.mark.parametrize("name", ALL_NAMES)
def test_protocol_runs_a_tiny_scenario(name):
    report = run_scenario(ScenarioConfig(
        protocol=name, num_nodes=12, width=800.0, height=300.0,
        num_flows=2, duration=12.0, pause_time=0.0, seed=21,
    ))
    c = report.c
    # Conservation: delivered + dropped + queue-drops never exceeds
    # originated plus in-flight slack.
    assert c.data_delivered <= c.data_originated
    assert 0.0 <= report.delivery_ratio <= 1.0
    assert report.mean_latency >= 0.0


@pytest.mark.parametrize("name", ALL_NAMES)
def test_successor_api_none_for_unknown_destination(name):
    from repro.experiments import build_scenario

    scenario = build_scenario(ScenarioConfig(
        protocol=name, num_nodes=6, width=500.0, height=300.0,
        num_flows=1, duration=5.0, pause_time=0.0, seed=2,
    ))
    protocol = scenario.protocols[0]
    assert protocol.successor(999) is None
