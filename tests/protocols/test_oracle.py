"""Tests for the omniscient oracle baseline."""

from repro import ScenarioConfig, run_scenario
from repro.mobility import StaticPlacement
from repro.protocols.oracle import OracleProtocol
from tests.conftest import Network


def test_oracle_delivers_immediately_no_control():
    net = Network(OracleProtocol, StaticPlacement.line(5, 200.0))
    net.send(0, 4)
    net.run(1.0)
    assert len(net.delivered_to(4)) == 1
    assert sum(net.metrics.control_transmissions.values()) == 0


def test_oracle_uses_shortest_path():
    net = Network(OracleProtocol, StaticPlacement.grid(3, 3, 200.0))
    net.send(0, 8)
    net.run(1.0)
    delivered = net.delivered_to(8)
    assert delivered and delivered[0].hops == 4  # manhattan distance


def test_oracle_detects_partition():
    placement = StaticPlacement({0: (0, 0), 1: (200, 0), 2: (9000, 0)})
    net = Network(OracleProtocol, placement)
    net.send(0, 2)
    net.run(1.0)
    assert net.metrics.data_dropped["partitioned"] == 1


def test_oracle_tracks_mobility_instantly():
    net = Network(OracleProtocol, StaticPlacement.line(4, 200.0))
    net.send(0, 3)
    net.run(1.0)
    # Teleport node 3 next to node 0: next packet goes direct.
    net.placement.move(3, 100.0, 0.0)
    net.send(0, 3)
    net.run(1.0)
    delivered = net.delivered_to(3)
    assert len(delivered) == 2
    assert delivered[1].hops == 1


def test_oracle_bounds_real_protocols():
    base = dict(num_nodes=20, width=900.0, height=300.0, num_flows=3,
                duration=20.0, pause_time=0.0, seed=3)
    oracle = run_scenario(ScenarioConfig(protocol="oracle", **base))
    ldr = run_scenario(ScenarioConfig(protocol="ldr", **base))
    assert oracle.delivery_ratio >= ldr.delivery_ratio - 0.02
