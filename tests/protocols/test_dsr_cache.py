"""Unit tests for the DSR route cache."""

from repro.protocols.dsr.cache import RouteCache
from repro.sim import Simulator


def make_cache(owner=0, lifetime=300.0, max_routes=4):
    sim = Simulator()
    return sim, RouteCache(sim, owner, max_routes_per_dst=max_routes,
                           lifetime=lifetime)


def test_add_and_lookup():
    _, cache = make_cache()
    cache.add([0, 1, 2, 3])
    assert cache.lookup(3) == [0, 1, 2, 3]


def test_prefixes_are_cached_too():
    _, cache = make_cache()
    cache.add([0, 1, 2, 3])
    assert cache.lookup(1) == [0, 1]
    assert cache.lookup(2) == [0, 1, 2]


def test_lookup_returns_shortest():
    _, cache = make_cache()
    cache.add([0, 1, 2, 5])
    cache.add([0, 4, 5])
    assert cache.lookup(5) == [0, 4, 5]


def test_route_must_start_at_owner():
    _, cache = make_cache(owner=0)
    cache.add([1, 2, 3])  # not ours: ignored
    assert cache.lookup(3) is None


def test_trivial_routes_ignored():
    _, cache = make_cache()
    cache.add([0])
    assert len(cache) == 0


def test_remove_link_prunes_both_directions():
    _, cache = make_cache()
    cache.add([0, 1, 2, 3])
    cache.add([0, 4, 3])
    removed = cache.remove_link(2, 1)  # reversed order on purpose
    assert removed >= 1
    assert cache.lookup(3) == [0, 4, 3]
    assert cache.lookup(2) is None


def test_remove_link_unrelated_is_noop():
    _, cache = make_cache()
    cache.add([0, 1, 2])
    cache.remove_link(7, 8)
    assert cache.lookup(2) == [0, 1, 2]


def test_expiry():
    sim, cache = make_cache(lifetime=5.0)
    cache.add([0, 1, 2])
    sim.run(until=10.0)
    assert cache.lookup(2) is None
    assert len(cache) == 0


def test_max_routes_per_destination_keeps_shortest():
    _, cache = make_cache(max_routes=2)
    cache.add([0, 1, 2, 3, 9])
    cache.add([0, 4, 5, 9])
    cache.add([0, 6, 9])
    assert cache.lookup(9) == [0, 6, 9]
    entries = cache._routes[9]
    assert len(entries) == 2


def test_duplicate_add_does_not_multiply():
    _, cache = make_cache()
    cache.add([0, 1, 2])
    cache.add([0, 1, 2])
    assert len(cache._routes[2]) == 1
