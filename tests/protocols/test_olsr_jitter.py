"""The paper's OLSR jitter fix: FIFO jitter vs plain (reordering) jitter."""

from repro import ScenarioConfig, run_scenario
from repro.mobility import StaticPlacement
from repro.net.queue import FifoJitterQueue
from repro.protocols.olsr import OlsrConfig, OlsrProtocol
from repro.protocols.olsr.protocol import _PlainJitter
from tests.conftest import Network


def test_default_uses_fifo_jitter():
    net = Network(OlsrProtocol, StaticPlacement.line(2, 200.0))
    assert isinstance(net.protocols[0].jitter_queue, FifoJitterQueue)


def test_plain_jitter_selected_by_config():
    net = Network(OlsrProtocol, StaticPlacement.line(2, 200.0),
                  config=OlsrConfig(fifo_jitter=False))
    assert isinstance(net.protocols[0].jitter_queue, _PlainJitter)


def test_plain_jitter_can_reorder():
    """The pre-fix behaviour the paper calls out: packets may overtake."""
    from repro.sim import Simulator
    import random

    sent = []
    sim = Simulator()
    queue = _PlainJitter(sim, lambda x, _: sent.append(x),
                         random.Random(3), max_jitter=0.015)
    for i in range(50):
        queue.push(i, None)
    sim.run()
    assert sorted(sent) == list(range(50))
    assert sent != list(range(50))  # order NOT preserved


def test_both_variants_still_route():
    base = dict(num_nodes=15, width=800.0, height=300.0, num_flows=2,
                duration=25.0, pause_time=25.0, seed=9)
    fixed = run_scenario(ScenarioConfig(protocol="olsr", **base))
    broken = run_scenario(ScenarioConfig(
        protocol="olsr", protocol_config=OlsrConfig(fifo_jitter=False),
        **base))
    # On a static network both converge and deliver.
    assert fixed.delivery_ratio > 0.8
    assert broken.delivery_ratio > 0.5
