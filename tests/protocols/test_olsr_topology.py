"""OLSR topology-table maintenance: ANSN replacement, expiry, dedup."""

from repro.mobility import StaticPlacement
from repro.protocols.olsr import OlsrConfig, OlsrProtocol
from repro.protocols.olsr.messages import OlsrTc
from tests.conftest import Network


def _protocol(config=None):
    net = Network(OlsrProtocol, StaticPlacement.line(2, 200.0),
                  config=config)
    return net, net.protocols[0]


def test_tc_installs_topology_entries():
    net, protocol = _protocol()
    protocol.on_packet(OlsrTc(origin=7, ansn=1, selectors=[8, 9]), from_id=1)
    assert (7, 8) in protocol.topology
    assert (7, 9) in protocol.topology


def test_newer_ansn_replaces_older_advertisement():
    net, protocol = _protocol()
    protocol.on_packet(OlsrTc(origin=7, ansn=1, selectors=[8]), from_id=1)
    protocol.on_packet(OlsrTc(origin=7, ansn=2, selectors=[9]), from_id=1)
    assert (7, 8) not in protocol.topology
    assert (7, 9) in protocol.topology


def test_duplicate_tc_ignored():
    net, protocol = _protocol()
    tc = OlsrTc(origin=7, ansn=3, selectors=[8])
    protocol.on_packet(tc, from_id=1)
    entry = protocol.topology[(7, 8)]
    protocol.on_packet(tc.copy(), from_id=1)
    assert protocol.topology[(7, 8)] is entry  # untouched


def test_topology_expiry_removes_edges_from_routes():
    net, protocol = _protocol(OlsrConfig(topology_hold_time=1.0))
    protocol.on_packet(OlsrTc(origin=1, ansn=1, selectors=[42]), from_id=1)
    # Give node 0 a symmetric link to 1 so the graph reaches 42 via 1.
    from repro.protocols.olsr.messages import OlsrHello

    protocol.on_packet(OlsrHello(1, [0], [], set()), from_id=1)
    net.run(0.5)
    assert protocol.routes.get(42) is not None
    net.run(2.0)
    protocol._recompute()
    assert protocol.routes.get(42) is None


def test_own_tc_ignored_on_reflection():
    net, protocol = _protocol()
    protocol.on_packet(OlsrTc(origin=0, ansn=1, selectors=[5]), from_id=1)
    assert (0, 5) not in protocol.topology
