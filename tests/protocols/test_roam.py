"""Behavioural tests for the ROAM substrate."""

from repro.mobility import StaticPlacement
from repro.protocols.roam import RoamConfig, RoamProtocol
from repro.protocols.roam.protocol import INFINITY
from repro.routing import LoopChecker
from tests.conftest import Network


def _line(count=4, config=None, seed=1):
    return Network(RoamProtocol, StaticPlacement.line(count, 200.0),
                   config=config, seed=seed)


def test_on_demand_search_and_delivery():
    net = _line(4)
    net.run(2.0)  # hellos discover neighbors
    net.send(0, 3)
    net.run(4.0)
    assert len(net.delivered_to(3)) == 1
    state = net.protocols[0].dests[3]
    assert state.dist == 3
    assert state.fd <= state.dist


def test_quiet_without_traffic_beyond_hellos():
    net = _line(4)
    net.run(6.0)
    assert net.metrics.control_transmissions.get("rreq", 0) == 0
    assert net.metrics.control_transmissions.get("rrep", 0) == 0


def test_search_is_reliable_per_neighbor():
    """Queries go to every neighbor individually (the coordination cost)."""
    net = Network(RoamProtocol, StaticPlacement.star(4, 200.0))
    net.run(2.0)
    net.send(1, 2)  # leaf to leaf through the hub
    net.run(4.0)
    assert len(net.delivered_to(2)) == 1
    # The hub (node 0) had to be queried and itself queried its neighbors.
    assert net.metrics.control_initiated.get("rreq", 0) >= 3


def test_silent_repair_with_feasible_alternative():
    """A node with a feasible second neighbor switches without messages."""
    placement = StaticPlacement({0: (0, 0), 1: (200, 0), 2: (100, 170),
                                 3: (400, 0)})
    net = Network(RoamProtocol, placement)
    net.run(2.0)
    net.send(0, 3)
    net.run(4.0)
    protocol = net.protocols[0]
    state = protocol.dests[3]
    # Teach node 0 that node 2 also reaches 3 at distance 2 (same as 1).
    state.via[2] = 2
    state.fd = 3  # loosen fd so 2's report is feasible
    queries_before = net.metrics.control_initiated.get("rreq", 0)
    protocol._neighbor_lost(state.successor)
    assert protocol.dests[3].successor == 2
    assert net.metrics.control_initiated.get("rreq", 0) == queries_before


def test_reset_search_when_no_feasible_alternative():
    net = _line(4)
    net.run(2.0)
    net.send(0, 3)
    net.run(3.0)
    queries_before = net.metrics.control_initiated.get("rreq", 0)
    net.placement.move(3, 90000.0, 0.0)
    # Route loss propagates one hop per infinite-distance report, so a few
    # packets are needed before the source itself re-searches.
    for _ in range(4):
        net.send(0, 3)
        net.run(1.0)
    net.run(8.0)
    assert net.metrics.control_initiated.get("rreq", 0) > queries_before


def test_gives_up_on_partition():
    placement = StaticPlacement({0: (0, 0), 1: (200, 0), 2: (9000, 0)})
    net = Network(RoamProtocol, placement,
                  config=RoamConfig(search_retries=1, search_timeout=1.0))
    net.run(2.0)
    net.send(0, 2)
    net.run(15.0)
    assert net.delivered_to(2) == []
    assert net.metrics.data_dropped.get("no_route_found", 0) == 1
    state = net.protocols[0].dests[2]
    assert not state.active
    assert state.dist == INFINITY


def test_route_expires_when_idle():
    net = _line(3, config=RoamConfig(route_lifetime=1.0))
    net.run(2.0)
    net.send(0, 2)
    net.run(1.0)
    assert net.protocols[0].dests[2].dist < INFINITY
    net.run(5.0)  # idle past the lifetime
    queries_before = net.metrics.control_initiated.get("rreq", 0)
    net.send(0, 2)
    net.run(3.0)
    # Expired route forced a fresh search.
    assert net.metrics.control_initiated.get("rreq", 0) > queries_before
    assert len(net.delivered_to(2)) == 2


def test_acyclic_under_churn():
    placement = StaticPlacement.grid(3, 3, 200.0)
    net = Network(RoamProtocol, placement, seed=6)
    checker = LoopChecker(list(net.protocols.values()),
                          check_ordering=False).install()
    net.run(2.0)
    net.send(0, 8)
    net.send(6, 2)
    net.run(3.0)
    net.placement.move(4, 50000.0, 0.0)
    net.send(0, 8)
    net.run(8.0)
    assert checker.checks_run > 0


def test_multiple_concurrent_searches():
    net = Network(RoamProtocol, StaticPlacement.grid(3, 3, 200.0), seed=2)
    net.run(2.0)
    for src, dst in ((0, 8), (2, 6), (6, 2)):
        net.send(src, dst)
    net.run(6.0)
    assert len(net.delivered_to(8)) == 1
    assert len(net.delivered_to(6)) == 1
    assert len(net.delivered_to(2)) == 1
