"""Tests for DSR's overhearing optimizations (promiscuous mode)."""

from repro.mobility import StaticPlacement
from repro.protocols.dsr import DsrConfig, DsrProtocol
from tests.conftest import Network


def test_promiscuous_learning_from_overheard_data():
    """Overhearing a data packet whose source route contains us teaches us
    the usable suffix, even though we did not relay the packet."""
    from repro.net.packet import DataPacket

    placement = StaticPlacement.line(4, 200.0)
    net = Network(DsrProtocol, placement,
                  config=DsrConfig(promiscuous_learning=True))
    bystander = net.protocols[2]
    assert bystander.cache.lookup(3) is None
    packet = DataPacket(src=0, dst=3, size_bytes=64, flow_id=0, seq=0,
                        created_at=0.0)
    packet.source_route = [0, 1, 2, 3]
    bystander._on_overhear(packet, sender=1, link_dst=2)
    assert bystander.cache.lookup(3) == [2, 3]


def test_promiscuous_rrep_overhearing_teaches_suffix():
    from repro.protocols.dsr.messages import DsrRrep

    placement = StaticPlacement.line(4, 200.0)
    net = Network(DsrProtocol, placement,
                  config=DsrConfig(promiscuous_learning=True))
    bystander = net.protocols[1]
    rrep = DsrRrep([0, 1, 2, 3], [3, 2, 1, 0])
    bystander._on_overhear(rrep, sender=2, link_dst=0)
    assert bystander.cache.lookup(3) == [1, 2, 3]


def test_route_shortening_issues_gratuitous_rrep():
    """C overhears A's transmission while the route says A->B->C: B is
    unnecessary, so C tells the source the shorter route."""
    # A line where all three nodes are mutually in range (spacing 130 m),
    # but seed the source with an artificially long cached route.
    placement = StaticPlacement({0: (0, 0), 1: (130, 0), 2: (260, 0)})
    net = Network(DsrProtocol, placement,
                  config=DsrConfig(route_shortening=True))
    protocol = net.protocols[0]
    protocol.cache.add([0, 1, 2])  # long route even though 2 is adjacent
    rreps_before = net.metrics.control_initiated.get("rrep", 0)
    net.send(0, 2)
    net.run(2.0)
    assert len(net.delivered_to(2)) == 1
    # Node 2 overheard node 0's transmission toward 1 and issued a
    # gratuitous RREP with the shortened route [0, 2].
    assert net.metrics.control_initiated.get("rrep", 0) > rreps_before
    assert net.protocols[0].cache.lookup(2) == [0, 2]


def test_route_shortening_rate_limited():
    placement = StaticPlacement({0: (0, 0), 1: (130, 0), 2: (260, 0)})
    net = Network(DsrProtocol, placement,
                  config=DsrConfig(route_shortening=True,
                                   gratuitous_rrep_holdoff=100.0))
    protocol = net.protocols[0]
    protocol.cache.add([0, 1, 2])
    net.send(0, 2)
    net.run(1.0)
    rreps_after_first = net.metrics.control_initiated.get("rrep", 0)
    # Force the long route again and resend quickly.
    protocol.cache._routes.clear()
    protocol.cache.add([0, 1, 2])
    net.send(0, 2)
    net.run(1.0)
    assert net.metrics.control_initiated.get("rrep", 0) == rreps_after_first


def test_optimizations_disabled():
    placement = StaticPlacement({0: (0, 0), 1: (130, 0), 2: (260, 0)})
    net = Network(DsrProtocol, placement,
                  config=DsrConfig(promiscuous_learning=False,
                                   route_shortening=False))
    protocol = net.protocols[0]
    protocol.cache.add([0, 1, 2])
    net.send(0, 2)
    net.run(2.0)
    # No gratuitous reply: the long route stays.
    assert net.protocols[0].cache.lookup(2) == [0, 1, 2]
    assert net.protocols[2].mac.promiscuous_fn is None
