"""Tests for the optional gray-zone (lossy edge) channel model."""

from repro.mobility import StaticPlacement
from repro.net import Node, WirelessChannel
from repro.net.packet import Frame, Packet
from repro.sim import Simulator


class _Sink:
    def __init__(self):
        self.received = []

    def on_packet(self, packet, from_id):
        self.received.append(packet)


def _build(positions, gray_zone):
    sim = Simulator(seed=9)
    channel = WirelessChannel(sim, StaticPlacement(positions),
                              gray_zone=gray_zone)
    nodes, sinks = {}, {}
    for node_id in positions:
        node = Node(sim, node_id, channel)
        sink = _Sink()
        node.mac.receive_fn = sink.on_packet
        nodes[node_id] = node
        sinks[node_id] = sink
    return sim, channel, nodes, sinks


def test_default_disk_is_crisp():
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (274, 0)}, gray_zone=0.0)
    for _ in range(20):
        channel.transmit(Frame(Packet(), 0, None), duration=1e-4)
        sim.run(until=sim.now + 0.01)
    assert len(sinks[1].received) == 20


def test_gray_zone_loses_some_edge_receptions():
    # 270 m of 275 m range with a 30% gray band: inner edge at 192.5 m,
    # loss probability ~0.47 per frame.
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (270, 0)},
                                        gray_zone=0.3)
    for _ in range(60):
        channel.transmit(Frame(Packet(), 0, None), duration=1e-4)
        sim.run(until=sim.now + 0.01)
    received = len(sinks[1].received)
    assert 5 < received < 55  # lossy but not dead


def test_gray_zone_spares_short_links():
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (100, 0)},
                                        gray_zone=0.3)
    for _ in range(20):
        channel.transmit(Frame(Packet(), 0, None), duration=1e-4)
        sim.run(until=sim.now + 0.01)
    assert len(sinks[1].received) == 20


def test_trace_json_roundtrip():
    import json

    from repro.experiments import ScenarioConfig, build_scenario
    from repro.trace import TraceRecorder

    scenario = build_scenario(ScenarioConfig(
        protocol="ldr", num_nodes=8, width=700.0, height=300.0,
        num_flows=1, duration=5.0, pause_time=0.0, seed=6))
    trace = TraceRecorder(scenario.sim).install(scenario)
    scenario.run()
    payload = json.loads(trace.to_json(kind="tx"))
    assert payload
    assert all(row["kind"] == "tx" for row in payload)
    assert all("t" in row and "node" in row for row in payload)
