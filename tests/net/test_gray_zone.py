"""Tests for the optional gray-zone (lossy edge) channel model."""

from repro.mobility import StaticPlacement
from repro.net import Node, WirelessChannel
from repro.net.packet import Frame, Packet
from repro.sim import Simulator


class _Sink:
    def __init__(self):
        self.received = []

    def on_packet(self, packet, from_id):
        self.received.append(packet)


def _build(positions, gray_zone):
    sim = Simulator(seed=9)
    channel = WirelessChannel(sim, StaticPlacement(positions),
                              gray_zone=gray_zone)
    nodes, sinks = {}, {}
    for node_id in positions:
        node = Node(sim, node_id, channel)
        sink = _Sink()
        node.mac.receive_fn = sink.on_packet
        nodes[node_id] = node
        sinks[node_id] = sink
    return sim, channel, nodes, sinks


def test_default_disk_is_crisp():
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (274, 0)}, gray_zone=0.0)
    for _ in range(20):
        channel.transmit(Frame(Packet(), 0, None), duration=1e-4)
        sim.run(until=sim.now + 0.01)
    assert len(sinks[1].received) == 20


def test_gray_zone_loses_some_edge_receptions():
    # 270 m of 275 m range with a 30% gray band: inner edge at 192.5 m,
    # loss probability ~0.47 per frame.
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (270, 0)},
                                        gray_zone=0.3)
    for _ in range(60):
        channel.transmit(Frame(Packet(), 0, None), duration=1e-4)
        sim.run(until=sim.now + 0.01)
    received = len(sinks[1].received)
    assert 5 < received < 55  # lossy but not dead


def test_gray_zone_spares_short_links():
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (100, 0)},
                                        gray_zone=0.3)
    for _ in range(20):
        channel.transmit(Frame(Packet(), 0, None), duration=1e-4)
        sim.run(until=sim.now + 0.01)
    assert len(sinks[1].received) == 20


class _FixedRng:
    """Deterministic stand-in for the channel's gray-zone stream."""

    def __init__(self, value):
        self.value = value
        self.draws = 0

    def random(self):
        self.draws += 1
        return self.value


def test_inner_edge_is_lossless_and_draws_no_rng():
    # distance == inner edge exactly: outside the gray band, so the loss
    # path must return without consuming a random draw (draw *order* is
    # part of the determinism contract).
    gray_zone = 0.3
    inner = 275.0 * (1.0 - gray_zone)  # 192.5, exactly representable
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (inner, 0)},
                                        gray_zone=gray_zone)
    rng = _FixedRng(0.0)  # would lose every frame if consulted
    channel._gray_rng = rng
    assert channel._gray_zone_loss(0, 1, sim.now) is False
    assert rng.draws == 0


def test_outer_edge_loss_probability_caps_at_half():
    # distance == range exactly: frac = 1, loss iff draw < 0.5.
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (275.0, 0)},
                                        gray_zone=0.3)
    channel._gray_rng = _FixedRng(0.4999)
    assert channel._gray_zone_loss(0, 1, sim.now) is True
    channel._gray_rng = _FixedRng(0.5)
    assert channel._gray_zone_loss(0, 1, sim.now) is False


def test_just_inside_inner_edge_draws_once_with_tiny_probability():
    gray_zone = 0.3
    inner = 275.0 * (1.0 - gray_zone)
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (inner + 1e-6, 0)},
                                        gray_zone=gray_zone)
    rng = _FixedRng(0.25)
    channel._gray_rng = rng
    assert channel._gray_zone_loss(0, 1, sim.now) is False  # frac ~ 4e-9
    assert rng.draws == 1


def test_vanishing_gray_band_does_not_divide_by_zero():
    # gray_zone so small that range - inner underflows toward 0: the
    # 1e-9 denominator guard keeps the loss fraction finite and the
    # computation total.
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (275.0, 0)},
                                        gray_zone=1e-15)
    channel._gray_rng = _FixedRng(0.9)
    result = channel._gray_zone_loss(0, 1, sim.now)
    assert result in (True, False)  # total, no ZeroDivisionError


def test_gray_zone_losses_identical_across_index_backends():
    # Same seed, same geometry: the per-reception draw sequence (and so
    # the exact set of lost frames) must not depend on the index backend.
    outcomes = {}
    for index in ("scan", "grid"):
        sim = Simulator(seed=9)
        channel = WirelessChannel(
            sim, StaticPlacement({0: (0, 0), 1: (250, 0), 2: (265, 0)}),
            gray_zone=0.3, index=index)
        nodes, sinks = {}, {}
        for node_id in (0, 1, 2):
            node = Node(sim, node_id, channel)
            sink = _Sink()
            node.mac.receive_fn = sink.on_packet
            nodes[node_id] = node
            sinks[node_id] = sink
        for _ in range(80):
            channel.transmit(Frame(Packet(), 0, None), duration=1e-4)
            sim.run(until=sim.now + 0.01)
        outcomes[index] = (len(sinks[1].received), len(sinks[2].received))
    assert outcomes["grid"] == outcomes["scan"]
    assert 0 < outcomes["grid"][1] < 80  # the band actually lost frames


def test_trace_json_roundtrip():
    import json

    from repro.experiments import ScenarioConfig, build_scenario
    from repro.obs import TraceRecorder

    scenario = build_scenario(ScenarioConfig(
        protocol="ldr", num_nodes=8, width=700.0, height=300.0,
        num_flows=1, duration=5.0, pause_time=0.0, seed=6))
    trace = TraceRecorder(scenario.sim).install(scenario)
    scenario.run()
    payload = json.loads(trace.to_json(kind="tx"))
    assert payload
    assert all(row["kind"] == "tx" for row in payload)
    assert all("t" in row and "node" in row for row in payload)
