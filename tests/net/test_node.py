"""Unit tests for the Node wiring."""

from repro.metrics import MetricsCollector
from repro.mobility import StaticPlacement
from repro.net import Node, WirelessChannel
from repro.sim import Simulator


class _EchoRouting:
    """Trivial protocol: deliver locally or ignore."""

    def __init__(self, node):
        self.node = node
        self.sent = []
        self.started = False

    def start(self):
        self.started = True

    def send_data(self, packet):
        self.sent.append(packet)
        if packet.dst == self.node.node_id:
            self.node.deliver(packet)

    def on_packet(self, packet, from_id):
        pass


def _node(metrics=None):
    sim = Simulator()
    channel = WirelessChannel(sim, StaticPlacement({0: (0, 0)}))
    node = Node(sim, 0, channel, metrics=metrics)
    routing = _EchoRouting(node)
    node.install_routing(routing)
    return sim, node, routing


def test_send_data_stamps_packet_and_routes():
    sim, node, routing = _node()
    packet = node.send_data(dst=5, size_bytes=256, flow_id=2, seq=9)
    assert routing.sent == [packet]
    assert packet.src == 0
    assert packet.dst == 5
    assert packet.size_bytes == 256
    assert packet.created_at == sim.now


def test_start_propagates_to_protocol():
    _, node, routing = _node()
    node.start()
    assert routing.started


def test_deliver_invokes_app_callback_and_metrics():
    metrics = MetricsCollector()
    sim, node, routing = _node(metrics=metrics)
    got = []
    node.deliver_fn = got.append
    packet = node.send_data(dst=0)
    assert got == [packet]
    assert metrics.data_originated == 1
    assert metrics.data_delivered == 1


def test_position_queries_mobility():
    _, node, _ = _node()
    assert node.position() == (0, 0)
