"""Unit tests for interface queues and the OLSR FIFO jitter queue."""

import random

from repro.net.queue import DropTailQueue, FifoJitterQueue
from repro.sim import Simulator


def test_droptail_fifo_order():
    q = DropTailQueue(capacity=10)
    for i in range(5):
        assert q.push(i)
    assert [q.pop() for _ in range(5)] == [0, 1, 2, 3, 4]


def test_droptail_capacity_and_drop_count():
    q = DropTailQueue(capacity=2)
    assert q.push("a")
    assert q.push("b")
    assert not q.push("c")
    assert q.drops == 1
    assert len(q) == 2


def test_droptail_peek_and_empty_pop():
    q = DropTailQueue()
    assert q.peek() is None
    assert q.pop() is None
    q.push("x")
    assert q.peek() == "x"
    assert len(q) == 1


def test_droptail_remove_if():
    q = DropTailQueue()
    for i in range(6):
        q.push(i)
    removed = q.remove_if(lambda x: x % 2 == 0)
    assert removed == [0, 2, 4]
    assert [q.pop() for _ in range(3)] == [1, 3, 5]


def test_jitter_queue_preserves_order():
    sim = Simulator(seed=1)
    sent = []
    q = FifoJitterQueue(sim, lambda x: sent.append(x), random.Random(99),
                        max_jitter=0.015)
    for i in range(50):
        q.push(i)
    sim.run()
    assert sent == list(range(50))


def test_jitter_queue_adds_bounded_delay():
    sim = Simulator(seed=1)
    times = []
    q = FifoJitterQueue(sim, lambda x: times.append(sim.now),
                        random.Random(5), max_jitter=0.015)
    q.push("only")
    sim.run()
    assert 0.0 <= times[0] <= 0.015


def test_jitter_queue_order_across_push_times():
    sim = Simulator(seed=1)
    sent = []
    q = FifoJitterQueue(sim, lambda x: sent.append(x), random.Random(3),
                        max_jitter=0.015)
    q.push("first")
    # Push the second a hair later; even if it draws a smaller jitter it
    # must not overtake the first.
    sim.schedule(0.001, q.push, "second")
    sim.run()
    assert sent == ["first", "second"]


def test_jitter_queue_passes_multiple_args():
    sim = Simulator(seed=1)
    sent = []
    q = FifoJitterQueue(sim, lambda a, b: sent.append((a, b)),
                        random.Random(3))
    q.push("x", 1)
    sim.run()
    assert sent == [("x", 1)]
