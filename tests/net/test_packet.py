"""Unit tests for packets and frames."""

from repro.net.packet import DataPacket, Frame, Packet


def test_packet_uids_are_unique():
    uids = {Packet().uid for _ in range(100)}
    assert len(uids) == 100


def test_data_packet_fields():
    packet = DataPacket(src=1, dst=2, size_bytes=512, flow_id=7, seq=3,
                        created_at=1.5)
    assert packet.src == 1
    assert packet.dst == 2
    assert packet.size_bytes == 512
    assert packet.flow_id == 7
    assert packet.seq == 3
    assert packet.created_at == 1.5
    assert packet.hops == 0
    assert not packet.is_control
    assert packet.kind == "data"


def test_base_packet_is_control():
    assert Packet().is_control


def test_frame_broadcast_flag():
    packet = Packet()
    assert Frame(packet, sender=1, link_dst=None).is_broadcast
    assert not Frame(packet, sender=1, link_dst=2).is_broadcast


def test_frame_repr_mentions_destination():
    packet = Packet()
    assert "bcast" in repr(Frame(packet, 1, None))
    assert "->2" in repr(Frame(packet, 1, 2))
