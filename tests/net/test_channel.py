"""Unit tests for the wireless channel: range, collisions, half duplex."""

from repro.mobility import StaticPlacement
from repro.net import Node, WirelessChannel
from repro.net.packet import Frame, Packet
from repro.sim import Simulator


class _Sink:
    """Minimal routing stand-in capturing received packets."""

    def __init__(self):
        self.received = []

    def start(self):
        pass

    def on_packet(self, packet, from_id):
        self.received.append((packet, from_id))


def _build(positions, transmission_range=275.0):
    sim = Simulator(seed=3)
    placement = StaticPlacement(positions)
    channel = WirelessChannel(sim, placement, transmission_range)
    nodes = {}
    sinks = {}
    for node_id in placement.node_ids():
        node = Node(sim, node_id, channel)
        sink = _Sink()
        node.routing = sink
        node.mac.receive_fn = sink.on_packet
        nodes[node_id] = node
        sinks[node_id] = sink
    return sim, channel, nodes, sinks


def test_neighbors_within_range():
    _, channel, _, _ = _build({0: (0, 0), 1: (200, 0), 2: (600, 0)})
    assert channel.neighbors_of(0) == [1]
    assert set(channel.neighbors_of(1)) == {0}
    assert channel.in_range(0, 1)
    assert not channel.in_range(0, 2)


def test_boundary_distance_is_in_range():
    _, channel, _, _ = _build({0: (0, 0), 1: (275.0, 0)})
    assert channel.in_range(0, 1)


def test_broadcast_reaches_all_in_range():
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (100, 0), 2: (200, 0),
                                         3: (900, 0)})
    frame = Frame(Packet(), sender=0, link_dst=None)
    channel.transmit(frame, duration=0.001)
    sim.run()
    assert len(sinks[1].received) == 1
    assert len(sinks[2].received) == 1
    assert sinks[3].received == []


def test_unicast_only_delivered_to_destination():
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (100, 0), 2: (200, 0)})
    frame = Frame(Packet(), sender=0, link_dst=2)
    channel.transmit(frame, duration=0.001)
    sim.run()
    assert sinks[2].received and not sinks[1].received


def test_overlapping_transmissions_collide():
    sim, channel, nodes, sinks = _build(
        {0: (0, 0), 1: (150, 0), 2: (300, 0)}
    )
    # 0 and 2 both in range of 1; simultaneous frames corrupt each other at 1.
    channel.transmit(Frame(Packet(), sender=0, link_dst=None), duration=0.002)
    channel.transmit(Frame(Packet(), sender=2, link_dst=None), duration=0.002)
    sim.run()
    assert sinks[1].received == []
    # The hidden terminals are out of range of each other (300 m > 275 m),
    # so neither hears the other's frame.
    assert sinks[0].received == []
    assert sinks[2].received == []


def test_staggered_transmissions_do_not_collide():
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (150, 0), 2: (300, 0)})
    channel.transmit(Frame(Packet(), sender=0, link_dst=None), duration=0.001)
    sim.schedule(0.005, lambda: channel.transmit(
        Frame(Packet(), sender=2, link_dst=None), duration=0.001))
    sim.run()
    assert len(sinks[1].received) == 2


def test_unicast_outcome_reported_success():
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (100, 0)})
    outcomes = []
    nodes[0].mac.on_tx_outcome = lambda frame, ok: outcomes.append(ok)
    channel.transmit(Frame(Packet(), sender=0, link_dst=1), duration=0.001)
    sim.run()
    assert outcomes == [True]


def test_unicast_outcome_reported_failure_out_of_range():
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (1000, 0)})
    outcomes = []
    nodes[0].mac.on_tx_outcome = lambda frame, ok: outcomes.append(ok)
    channel.transmit(Frame(Packet(), sender=0, link_dst=1), duration=0.001)
    sim.run()
    assert outcomes == [False]


def test_observers_see_transmissions():
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (100, 0)})
    seen = []
    channel.observers.append(lambda s, f, r: seen.append((s, tuple(r))))
    channel.transmit(Frame(Packet(), sender=0, link_dst=None), duration=0.001)
    sim.run()
    assert seen == [(0, (1,))]


def test_receiver_transmitting_misses_frame():
    sim, channel, nodes, sinks = _build({0: (0, 0), 1: (150, 0)})
    # Make node 1 "transmitting" for the duration of node 0's frame.
    nodes[1].mac._tx_end = 10.0
    nodes[1].mac._current = object()
    channel.transmit(Frame(Packet(), sender=0, link_dst=None), duration=0.001)
    sim.run(until=5.0)
    assert sinks[1].received == []
