"""Property suite: grid and scan backends are observationally identical.

Seeded-random sweeps build the *same* world twice — once per backend —
and compare every observable the channel exposes: ``neighbors_of`` sets
and order, ``in_range``, and full ``transmit`` logs (coverage, NAV,
gray-zone RNG outcomes) under crash and link-blackout overlays.  Each
case is derived from a single ``random.Random`` seed, so a failure
reproduces from the printed trial number.

The quick sweep runs in tier-1; a larger one is marked ``slow``.
"""

import random

import pytest

from repro.mobility import RandomWaypoint, StaticPlacement
from repro.net import Node, WirelessChannel
from repro.net.packet import Frame, Packet
from repro.sim import Simulator

RANGE = 275.0


def _random_static_positions(rng, num_nodes):
    """Random cluster layout with adversarial exact-boundary pairs."""
    positions = {}
    for nid in range(num_nodes):
        positions[nid] = (rng.uniform(-300.0, 1500.0),
                          rng.uniform(-300.0, 900.0))
    # Pin some pairs to the exact unit-disk boundary (distance == range)
    # and just past it — the cases where cell rounding could disagree.
    boundary_pairs = min(num_nodes // 2, 4)
    for k in range(boundary_pairs):
        a, b = 2 * k, 2 * k + 1
        ax, ay = positions[a]
        eps = rng.choice([0.0, 0.0, 1e-9, -1e-9])
        positions[b] = (ax + RANGE + eps, ay)
    return positions


def _build_world(index, mobility_factory, seed, gray_zone=0.0):
    sim = Simulator(seed=seed)
    mobility = mobility_factory(sim)
    channel = WirelessChannel(sim, mobility, transmission_range=RANGE,
                              gray_zone=gray_zone, index=index)
    nodes = {nid: Node(sim, nid, channel) for nid in mobility.node_ids()}
    return sim, channel, nodes


def _apply_overlays(rng, channel, nodes):
    """Crash some nodes and deny some links, identically derivable."""
    ids = sorted(nodes)
    for nid in ids:
        if rng.random() < 0.2:
            nodes[nid].alive = False
    for _ in range(len(ids) // 2):
        a, b = rng.sample(ids, 2)
        channel.deny_link(a, b)


def _compare_worlds(case_seed, mobility_factory, times, label):
    worlds = {}
    for index in ("scan", "grid"):
        rng = random.Random(case_seed)  # identical overlay derivation
        sim, channel, nodes = _build_world(index, mobility_factory,
                                           seed=case_seed & 0x7FFFFFFF)
        _apply_overlays(rng, channel, nodes)
        worlds[index] = (sim, channel, nodes)
    _, scan_channel, scan_nodes = worlds["scan"]
    _, grid_channel, _ = worlds["grid"]
    ids = sorted(scan_nodes)
    for t in times:
        for nid in ids:
            scan = scan_channel.neighbors_of(nid, at_time=t)
            grid = grid_channel.neighbors_of(nid, at_time=t)
            assert grid == scan, (
                "%s: neighbors_of(%d, t=%g) diverged: scan=%s grid=%s"
                % (label, nid, t, scan, grid))
        pair_rng = random.Random(case_seed ^ 0x5A5A)
        for _ in range(3 * len(ids)):
            a, b = pair_rng.sample(ids, 2)
            assert (scan_channel.in_range(a, b, at_time=t)
                    == grid_channel.in_range(a, b, at_time=t)), (
                "%s: in_range(%d, %d, t=%g) diverged" % (label, a, b, t))


def _sweep(master_seed, cases, slow_times=4):
    master = random.Random(master_seed)
    for trial in range(cases):
        case_seed = master.randrange(1, 2 ** 31)
        case_rng = random.Random(case_seed)
        num_nodes = case_rng.randrange(2, 36)
        mobile = case_rng.random() < 0.5
        if mobile:
            pause = case_rng.choice([0.0, 0.0, 5.0])

            def mobility_factory(sim, n=num_nodes, p=pause):
                return RandomWaypoint(
                    n, 1400.0, 500.0, pause_time=p, duration=40.0,
                    rng=sim.stream("mobility"))

            times = [case_rng.uniform(0.0, 40.0) for _ in range(slow_times)]
        else:
            positions = _random_static_positions(case_rng, num_nodes)

            def mobility_factory(sim, pos=positions):
                return StaticPlacement(pos)

            times = [0.0, case_rng.uniform(0.0, 40.0)]
        label = "trial %d (seed %d, n=%d, %s)" % (
            trial, case_seed, num_nodes, "waypoint" if mobile else "static")
        _compare_worlds(case_seed, mobility_factory, times, label)


def test_equivalence_sweep_quick():
    _sweep(master_seed=20030713, cases=12)


@pytest.mark.slow
def test_equivalence_sweep_large():
    _sweep(master_seed=19991231, cases=120, slow_times=8)


def test_transmit_streams_identical_under_gray_zone_and_faults():
    """Drive real transmissions through both worlds and compare the full
    observable log: per-transmit coverage lists and every decoded frame.
    Gray-zone losses draw from the channel RNG stream, so identical logs
    prove the draw *order* is identical too."""

    def mobility_factory(sim):
        return RandomWaypoint(16, 1000.0, 400.0, pause_time=0.0,
                              duration=30.0, rng=sim.stream("mobility"))

    logs = {}
    for index in ("scan", "grid"):
        sim, channel, nodes = _build_world(index, mobility_factory,
                                           seed=77, gray_zone=0.25)
        log = []
        channel.observers.append(
            lambda s, f, rids, log=log: log.append(("tx", s, tuple(rids))))
        for nid, node in nodes.items():
            node.mac.receive_fn = (
                lambda packet, from_id, nid=nid, log=log:
                log.append(("rx", nid, from_id)))
        nodes[3].alive = False
        channel.deny_link(0, 1)

        def send(sender, dst, channel=channel, sim=sim):
            channel.transmit(Frame(Packet(), sender=sender, link_dst=dst),
                             duration=1e-3)

        seq_rng = random.Random(4242)
        at = 0.1
        for _ in range(60):
            sender = seq_rng.randrange(16)
            dst = seq_rng.choice([None, seq_rng.randrange(16)])
            sim.schedule_at(at, send, sender, dst)
            at += seq_rng.uniform(0.005, 0.2)
        sim.run(until=at + 1.0)
        logs[index] = log
    assert logs["grid"] == logs["scan"]
    assert any(entry[0] == "rx" for entry in logs["grid"])
