"""Channel behaviour under mobility and the virtual RTS/CTS."""

from repro.mobility import RandomWaypoint, StaticPlacement
from repro.net import Node, WirelessChannel
from repro.net.packet import Frame, Packet
from repro.sim import Simulator


class _Sink:
    def __init__(self):
        self.received = []

    def start(self):
        pass

    def on_packet(self, packet, from_id):
        self.received.append(packet)


def test_neighbors_change_as_nodes_move():
    sim = Simulator(seed=2)
    import random

    mobility = RandomWaypoint(num_nodes=6, width=1200.0, height=300.0,
                              pause_time=0.0, duration=100.0,
                              rng=random.Random(4))
    channel = WirelessChannel(sim, mobility)
    for node_id in mobility.node_ids():
        Node(sim, node_id, channel)
    snapshots = set()
    for t in range(0, 100, 10):
        sim.scheduler._now = float(t)
        snapshots.add(tuple(sorted(channel.neighbors_of(0))))
    assert len(snapshots) > 1  # the neighborhood actually churns


def test_virtual_cts_navs_receivers_neighbors():
    """A hidden terminal (out of the sender's range, within the
    receiver's) defers during a unicast exchange."""
    sim = Simulator(seed=1)
    placement = StaticPlacement({0: (0, 0), 1: (200, 0), 2: (400, 0)})
    channel = WirelessChannel(sim, placement)
    nodes = {}
    for node_id in placement.node_ids():
        node = Node(sim, node_id, channel)
        node.mac.receive_fn = _Sink().on_packet
        nodes[node_id] = node
    frame = Frame(Packet(), sender=0, link_dst=1)
    channel.transmit(frame, duration=0.005)
    # Node 2 cannot hear node 0, but it is the receiver's neighbor: the
    # virtual CTS must have set its NAV for the frame duration.
    assert nodes[2].mac._nav >= 0.005


def test_broadcast_does_not_cts():
    sim = Simulator(seed=1)
    placement = StaticPlacement({0: (0, 0), 1: (200, 0), 2: (400, 0)})
    channel = WirelessChannel(sim, placement)
    nodes = {}
    for node_id in placement.node_ids():
        node = Node(sim, node_id, channel)
        node.mac.receive_fn = _Sink().on_packet
        nodes[node_id] = node
    channel.transmit(Frame(Packet(), sender=0, link_dst=None), duration=0.005)
    # No RTS/CTS for broadcast: the hidden node's NAV is untouched.
    assert nodes[2].mac._nav == 0.0


def test_link_break_mid_run_causes_unicast_failures():
    sim = Simulator(seed=3)
    placement = StaticPlacement({0: (0, 0), 1: (200, 0)})
    channel = WirelessChannel(sim, placement)
    nodes = {i: Node(sim, i, channel) for i in placement.node_ids()}
    sink = _Sink()
    nodes[1].mac.receive_fn = sink.on_packet
    failures = []
    nodes[0].mac.send(Packet(), next_hop=1,
                      on_fail=lambda p, nh: failures.append(nh))
    sim.run(until=0.5)
    assert sink.received and not failures
    placement.move(1, 9999.0, 0.0)
    nodes[0].mac.send(Packet(), next_hop=1,
                      on_fail=lambda p, nh: failures.append(nh))
    sim.run(until=5.0)
    assert failures == [1]
