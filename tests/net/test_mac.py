"""Unit tests for the CSMA/CA MAC."""

from repro.mobility import StaticPlacement
from repro.net import MacConfig, Node, WirelessChannel
from repro.net.packet import Packet
from repro.sim import Simulator


class _Sink:
    def __init__(self):
        self.received = []

    def start(self):
        pass

    def on_packet(self, packet, from_id):
        self.received.append((packet, from_id))


def _build(positions, mac_config=None):
    sim = Simulator(seed=5)
    channel = WirelessChannel(sim, StaticPlacement(positions))
    nodes, sinks = {}, {}
    for node_id in positions:
        node = Node(sim, node_id, channel, mac_config=mac_config)
        sink = _Sink()
        node.routing = sink
        node.mac.receive_fn = sink.on_packet
        nodes[node_id] = node
        sinks[node_id] = sink
    return sim, nodes, sinks


def test_broadcast_delivery():
    sim, nodes, sinks = _build({0: (0, 0), 1: (100, 0), 2: (200, 0)})
    nodes[0].mac.send(Packet())
    sim.run(until=1.0)
    assert len(sinks[1].received) == 1
    assert len(sinks[2].received) == 1
    assert sinks[1].received[0][1] == 0  # from node 0


def test_unicast_delivery_and_success():
    sim, nodes, sinks = _build({0: (0, 0), 1: (100, 0)})
    failures = []
    nodes[0].mac.send(Packet(), next_hop=1,
                      on_fail=lambda p, nh: failures.append(nh))
    sim.run(until=1.0)
    assert len(sinks[1].received) == 1
    assert failures == []


def test_unicast_to_unreachable_retries_then_fails():
    config = MacConfig(retry_limit=3)
    sim, nodes, sinks = _build({0: (0, 0), 1: (5000, 0)}, mac_config=config)
    failures = []
    nodes[0].mac.send(Packet(), next_hop=1,
                      on_fail=lambda p, nh: failures.append(nh))
    sim.run(until=5.0)
    assert failures == [1]
    assert sinks[1].received == []


def test_queue_serves_packets_in_order():
    sim, nodes, sinks = _build({0: (0, 0), 1: (100, 0)})
    packets = [Packet() for _ in range(5)]
    for p in packets:
        nodes[0].mac.send(p, next_hop=1)
    sim.run(until=2.0)
    received = [p for (p, _) in sinks[1].received]
    assert received == packets


def test_queue_overflow_drops_silently():
    """Congestion drops are not link failures: on_fail must NOT fire."""
    config = MacConfig(queue_capacity=2)
    sim, nodes, sinks = _build({0: (0, 0), 1: (100, 0)}, mac_config=config)
    failures = []
    sent_ok = 0
    for _ in range(5):
        if nodes[0].mac.send(Packet(), next_hop=1,
                             on_fail=lambda p, nh: failures.append(p)):
            sent_ok += 1
    sim.run(until=2.0)
    assert failures == []
    assert len(sinks[1].received) == sent_ok
    assert nodes[0].mac.queue.drops == 5 - sent_ok


def test_contending_senders_serialize():
    """Two neighbors sending at once: carrier sense avoids most collisions."""
    sim, nodes, sinks = _build({0: (0, 0), 1: (100, 0), 2: (200, 0)})
    for _ in range(10):
        nodes[0].mac.send(Packet(), next_hop=1)
        nodes[2].mac.send(Packet(), next_hop=1)
    sim.run(until=5.0)
    # Unicast ARQ recovers any residual collisions.
    assert len(sinks[1].received) == 20


def test_purge_removes_matching_packets():
    sim, nodes, sinks = _build({0: (0, 0), 1: (100, 0)})
    keep = Packet()
    drop = Packet()
    # Stall the MAC so packets stay queued: occupy the medium far into the
    # future before sending.
    nodes[0].mac.set_nav(100.0)
    nodes[0].mac.send(keep, next_hop=1)
    nodes[0].mac.send(drop, next_hop=1)
    removed = nodes[0].mac.purge(lambda p: p is drop)
    assert removed == [drop] or removed == []  # head may be in service
    assert all(job.frame.packet is not drop for job in nodes[0].mac.queue._items)


def test_transmission_duration_scales_with_size():
    config = MacConfig(bitrate=1e6, header_bytes=0)
    sim, nodes, sinks = _build({0: (0, 0), 1: (100, 0)}, mac_config=config)
    class BigPacket(Packet):
        size_bytes = 12500  # 0.1 s at 1 Mb/s

    big = BigPacket()
    nodes[0].mac.send(big, next_hop=1)
    sim.run(until=10.0)
    assert sinks[1].received
    # Frame cannot have completed before its airtime elapsed.
    assert sim.now >= 0.1
