"""Unit tests for the spatial-index backends (repro.net.spatial).

The equivalence *property* suite lives in test_spatial_equivalence.py;
this file pins down the mechanics: output ordering, memo/bucket
invalidation, boundary geometry, and the one-lookup-per-node-per-transmit
guarantee the grid gives ``WirelessChannel.transmit``.
"""

import pytest

from repro.mobility import RandomWaypoint, StaticPlacement
from repro.net import Node, WirelessChannel
from repro.net.packet import Frame, Packet
from repro.net.spatial import BUCKET_SLACK, CELL_MARGIN, make_index
from repro.sim import Simulator


def _world(placement, index="grid", transmission_range=275.0, gray_zone=0.0):
    sim = Simulator(seed=3)
    channel = WirelessChannel(sim, placement,
                              transmission_range=transmission_range,
                              gray_zone=gray_zone, index=index)
    nodes = {nid: Node(sim, nid, channel) for nid in placement.node_ids()}
    return sim, channel, nodes


class CountingMobility:
    """Wraps a mobility model, counting position lookups per node.

    Bulk ``positions_at`` calls count once per returned node, so the
    counter measures exactly what the snapshot contract promises: how
    many times the model was consulted about each node.
    """

    def __init__(self, inner):
        self.inner = inner
        self.static = getattr(inner, "static", False)
        self.max_speed = getattr(inner, "max_speed", None)
        self.counts = {}

    @property
    def version(self):
        return getattr(self.inner, "version", 0)

    def position(self, node_id, t):
        self.counts[node_id] = self.counts.get(node_id, 0) + 1
        return self.inner.position(node_id, t)

    def positions_at(self, node_ids, t):
        for node_id in node_ids:
            self.counts[node_id] = self.counts.get(node_id, 0) + 1
        return self.inner.positions_at(node_ids, t)

    def node_ids(self):
        return self.inner.node_ids()

    def reset(self):
        self.counts = {}


# ---------------------------------------------------------------------------
# Construction / registry
# ---------------------------------------------------------------------------

def test_make_index_rejects_unknown_backend():
    sim = Simulator(seed=1)
    placement = StaticPlacement.line(2)
    with pytest.raises(ValueError, match="unknown channel index"):
        make_index("quadtree", sim, placement, 275.0)


def test_channel_rejects_unknown_backend():
    sim = Simulator(seed=1)
    with pytest.raises(ValueError, match="unknown channel index"):
        WirelessChannel(sim, StaticPlacement.line(2), index="nope")


# ---------------------------------------------------------------------------
# Ordering: results come back in channel-attach order, not id order
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("index_name", ["scan", "grid"])
def test_results_preserve_attach_order(index_name):
    # Attach ids out of numeric order; both backends must echo that order.
    sim = Simulator(seed=1)
    placement = StaticPlacement({7: (0.0, 0.0), 3: (50.0, 0.0),
                                 9: (100.0, 0.0), 1: (150.0, 0.0)})
    index = make_index(index_name, sim, placement, 275.0)
    for nid in (7, 3, 9, 1):
        index.attach(nid)
    assert index.near(7, 0.0) == [3, 9, 1]
    assert index.near(1, 0.0) == [7, 3, 9]


def test_grid_order_matches_scan_when_nodes_span_cells():
    # Spread nodes over several cells so the grid's bucket walk would be
    # geographically ordered without the rank sort.
    sim = Simulator(seed=1)
    positions = {nid: (nid * 260.0, 0.0) for nid in (5, 2, 8, 0, 6, 3)}
    placement = StaticPlacement(positions)
    scan = make_index("scan", sim, placement, 275.0)
    grid = make_index("grid", sim, placement, 275.0)
    for nid in positions:
        scan.attach(nid)
        grid.attach(nid)
    for nid in positions:
        assert grid.near(nid, 0.0) == scan.near(nid, 0.0)


# ---------------------------------------------------------------------------
# Boundary geometry
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("index_name", ["scan", "grid"])
def test_distance_exactly_range_is_in_range(index_name):
    # The unit disk is closed: distance == range counts.  The grid must
    # find the neighbor even when it sits exactly on a cell boundary.
    placement = StaticPlacement({0: (0.0, 0.0), 1: (275.0, 0.0),
                                 2: (275.0000001, 0.0)})
    sim, channel, nodes = _world(placement, index=index_name)
    assert channel.neighbors_of(0) == [1]
    assert channel.in_range(0, 1)
    assert not channel.in_range(0, 2)


@pytest.mark.parametrize("index_name", ["scan", "grid"])
def test_negative_coordinates(index_name):
    placement = StaticPlacement({0: (-400.0, -400.0), 1: (-350.0, -400.0),
                                 2: (400.0, 400.0)})
    sim, channel, nodes = _world(placement, index=index_name)
    assert channel.neighbors_of(0) == [1]
    assert channel.neighbors_of(2) == []


@pytest.mark.parametrize("index_name", ["scan", "grid"])
def test_zero_range_degenerates_to_colocation(index_name):
    placement = StaticPlacement({0: (10.0, 10.0), 1: (10.0, 10.0),
                                 2: (10.0, 10.1)})
    sim, channel, nodes = _world(placement, index=index_name,
                                 transmission_range=0.0)
    assert channel.neighbors_of(0) == [1]


def test_cell_margin_covers_range_boundary_in_any_cell_phase():
    # Slide an exactly-at-range pair across cell-boundary phases; the 3x3
    # search ring must never lose the neighbor to // rounding.
    sim = Simulator(seed=1)
    for offset in (0.0, 1e-9, 137.4999, 274.999999, 275.0 * CELL_MARGIN):
        placement = StaticPlacement({0: (offset, 0.0),
                                     1: (offset + 275.0, 0.0)})
        grid = make_index("grid", sim, placement, 275.0)
        grid.attach(0)
        grid.attach(1)
        assert grid.near(0, 0.0) == [1], "lost at offset %r" % offset


# ---------------------------------------------------------------------------
# Fault overlays stay in the channel (all-dead / all-denied neighborhoods)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("index_name", ["scan", "grid"])
def test_all_dead_neighborhood_is_empty_but_index_unchanged(index_name):
    placement = StaticPlacement.star(4, radius=100.0)
    sim, channel, nodes = _world(placement, index=index_name)
    for leaf in (1, 2, 3, 4):
        nodes[leaf].alive = False
    assert channel.neighbors_of(0) == []
    # The index itself never filters on liveness: geometry is unchanged.
    assert channel.index.near(0, sim.now) == [1, 2, 3, 4]


@pytest.mark.parametrize("index_name", ["scan", "grid"])
def test_all_denied_neighborhood_is_empty_but_index_unchanged(index_name):
    placement = StaticPlacement.star(4, radius=100.0)
    sim, channel, nodes = _world(placement, index=index_name)
    for leaf in (1, 2, 3, 4):
        channel.deny_link(0, leaf)
    assert channel.neighbors_of(0) == []
    assert channel.index.near(0, sim.now) == [1, 2, 3, 4]
    channel.allow_link(0, 2)
    assert channel.neighbors_of(0) == [2]


# ---------------------------------------------------------------------------
# Invalidation: version bumps, event epochs, attachment
# ---------------------------------------------------------------------------

def test_static_move_invalidates_immediately():
    placement = StaticPlacement({0: (0.0, 0.0), 1: (100.0, 0.0)})
    sim, channel, nodes = _world(placement, index="grid")
    assert channel.neighbors_of(0) == [1]
    placement.move(1, 5000.0, 0.0)  # version bump, same event, same time
    assert channel.neighbors_of(0) == []
    placement.move(1, 50.0, 0.0)
    assert channel.neighbors_of(0) == [1]


def test_static_placement_builds_once_across_queries():
    placement = StaticPlacement.grid(4, 4, spacing=150.0)
    sim, channel, nodes = _world(placement, index="grid")
    for _ in range(5):
        for nid in placement.node_ids():
            channel.neighbors_of(nid)
    assert channel.index.builds == 1
    placement.move(0, 1.0, 1.0)
    channel.neighbors_of(0)
    assert channel.index.builds == 2


def test_attach_forces_rebucket():
    placement = StaticPlacement({0: (0.0, 0.0), 1: (100.0, 0.0),
                                 2: (120.0, 0.0)})
    sim = Simulator(seed=3)
    channel = WirelessChannel(sim, placement, index="grid")
    node0 = Node(sim, 0, channel)
    node1 = Node(sim, 1, channel)
    assert channel.neighbors_of(0) == [1]
    node2 = Node(sim, 2, channel)  # attaches mid-run
    assert channel.neighbors_of(0) == [1, 2]
    assert node0 and node1 and node2  # keep references alive


def test_speed_bounded_buckets_survive_across_events():
    # RandomWaypoint declares max_speed, so a snapshot built once serves
    # many events until worst-case drift exhausts the slack window.
    sim = Simulator(seed=5)
    mobility = RandomWaypoint(30, 1200.0, 240.0, max_speed=20.0,
                              pause_time=0.0, duration=60.0,
                              rng=sim.stream("mobility"))
    channel = WirelessChannel(sim, mobility, index="grid")
    nodes = [Node(sim, nid, channel) for nid in mobility.node_ids()]
    slack_window = channel.index._bucket_limit
    assert slack_window == pytest.approx(
        (BUCKET_SLACK - 1.0) * 275.0 * CELL_MARGIN / 20.0)
    seen = []

    def probe():
        seen.append(len(channel.neighbors_of(0)))

    for k in range(10):  # ten events well inside the slack window
        sim.schedule(0.01 * (k + 1), probe)
    sim.run(until=1.0)
    assert len(seen) == 10
    assert channel.index.builds == 1
    # ... and a query past the window forces a rebuild.
    channel.neighbors_of(0, at_time=slack_window + 1.0)
    assert channel.index.builds == 2
    assert nodes


def test_unknown_motion_law_is_reconsulted_every_event():
    # A model with no max_speed and no version discipline: the grid falls
    # back to trusting nothing across events, so even silent mutation is
    # picked up at the next event (the epoch in the memo key).
    class TeleportingMobility:
        def __init__(self):
            self.positions = {0: (0.0, 0.0), 1: (100.0, 0.0)}

        def position(self, node_id, t):
            return self.positions[node_id]

        def positions_at(self, node_ids, t):
            return {nid: self.positions[nid] for nid in node_ids}

        def node_ids(self):
            return [0, 1]

    mobility = TeleportingMobility()
    sim = Simulator(seed=1)
    channel = WirelessChannel(sim, mobility, index="grid")
    nodes = [Node(sim, nid, channel) for nid in mobility.node_ids()]
    results = []

    def probe_then_teleport():
        results.append(channel.neighbors_of(0))
        mobility.positions[1] = (9999.0, 0.0)  # silent mutation

    def probe_after():
        results.append(channel.neighbors_of(0))

    sim.schedule(1.0, probe_then_teleport)
    sim.schedule(1.0, probe_after)  # same time, later event
    sim.run(until=2.0)
    assert results == [[1], []]
    assert nodes


# ---------------------------------------------------------------------------
# The transmit snapshot guarantee (one mobility lookup per node per tx)
# ---------------------------------------------------------------------------

def _transmit_world(index_name, num_nodes=24):
    sim = Simulator(seed=11)
    inner = RandomWaypoint(num_nodes, 900.0, 500.0, pause_time=0.0,
                           duration=30.0, rng=sim.stream("mobility"))
    mobility = CountingMobility(inner)
    channel = WirelessChannel(sim, mobility, gray_zone=0.2, index=index_name)
    nodes = [Node(sim, nid, channel) for nid in mobility.node_ids()]
    sim.run(until=1.0)
    return sim, channel, mobility, nodes


@pytest.mark.parametrize("is_broadcast", [True, False])
def test_grid_transmit_consults_mobility_at_most_once_per_node(is_broadcast):
    sim, channel, mobility, nodes = _transmit_world("grid")
    link_dst = None if is_broadcast else 1
    mobility.reset()
    channel.transmit(Frame(Packet(), sender=0, link_dst=link_dst),
                     duration=1e-3)
    assert mobility.counts, "transmit consulted no positions at all?"
    worst = max(mobility.counts.values())
    assert worst <= 1, (
        "grid transmit looked a node's position up %d times" % worst)


def test_scan_transmit_repeats_lookups_so_the_guarantee_is_meaningful():
    # The reference scan recomputes positions per query (sender coverage +
    # virtual CTS): without the grid's memo some node is consulted more
    # than once, which is exactly the regression the test above pins.
    sim, channel, mobility, nodes = _transmit_world("scan")
    mobility.reset()
    channel.transmit(Frame(Packet(), sender=0, link_dst=1), duration=1e-3)
    assert max(mobility.counts.values()) >= 2


def test_grid_point_queries_do_not_build_buckets():
    # in_range-style point lookups must stay O(1): no bucket construction.
    sim, channel, mobility, nodes = _transmit_world("grid")
    builds_before = channel.index.builds
    mobility.reset()
    channel.in_range(0, 1)
    channel.in_range(2, 3)
    assert channel.index.builds == builds_before
    assert sum(mobility.counts.values()) == 4  # two pairs, one call each
