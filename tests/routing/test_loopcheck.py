"""Unit tests for the successor-graph loop auditor."""

import pytest

from repro.routing.loopcheck import LoopChecker, LoopError


class _FakeProtocol:
    """Scriptable routing table for auditing."""

    def __init__(self, node_id, successors=None, metrics=None):
        self.node_id = node_id
        self._successors = successors or {}
        self._metrics = metrics or {}
        self.table_change_hook = None

    def successor(self, dst):
        return self._successors.get(dst)

    def route_metric(self, dst):
        return self._metrics.get(dst)


def test_acyclic_tree_passes():
    # 1 -> 2 -> 3 -> dst(0); 4 -> 2.
    protos = [
        _FakeProtocol(0),
        _FakeProtocol(1, {0: 2}),
        _FakeProtocol(2, {0: 3}),
        _FakeProtocol(3, {0: 0}),
        _FakeProtocol(4, {0: 2}),
    ]
    checker = LoopChecker(protos, check_ordering=False)
    checker.check_destination(0)
    assert checker.checks_run == 1


def test_two_node_loop_detected():
    protos = [
        _FakeProtocol(0),
        _FakeProtocol(1, {0: 2}),
        _FakeProtocol(2, {0: 1}),
    ]
    checker = LoopChecker(protos, check_ordering=False)
    with pytest.raises(LoopError):
        checker.check_destination(0)


def test_three_node_loop_detected():
    protos = [
        _FakeProtocol(0),
        _FakeProtocol(1, {0: 2}),
        _FakeProtocol(2, {0: 3}),
        _FakeProtocol(3, {0: 1}),
    ]
    with pytest.raises(LoopError):
        LoopChecker(protos, check_ordering=False).check_destination(0)


def test_self_loop_detected():
    protos = [_FakeProtocol(0), _FakeProtocol(1, {0: 1})]
    with pytest.raises(LoopError):
        LoopChecker(protos, check_ordering=False).check_destination(0)


def test_dangling_successor_is_not_a_loop():
    protos = [_FakeProtocol(0), _FakeProtocol(1, {0: 99})]
    LoopChecker(protos, check_ordering=False).check_destination(0)


def test_ordering_violation_equal_sn_nondecreasing_fd():
    # 1 -> 2 with equal sequence numbers but fd(2) >= fd(1): violation.
    protos = [
        _FakeProtocol(0),
        _FakeProtocol(1, {0: 2}, {0: (5, 3, 4)}),
        _FakeProtocol(2, {0: 0}, {0: (5, 3, 3)}),
    ]
    with pytest.raises(LoopError):
        LoopChecker(protos, check_ordering=True).check_destination(0)


def test_ordering_ok_with_decreasing_fd():
    protos = [
        _FakeProtocol(0),
        _FakeProtocol(1, {0: 2}, {0: (5, 3, 4)}),
        _FakeProtocol(2, {0: 0}, {0: (5, 2, 2)}),
    ]
    LoopChecker(protos, check_ordering=True).check_destination(0)


def test_ordering_ok_with_fresher_downstream_sn():
    protos = [
        _FakeProtocol(0),
        _FakeProtocol(1, {0: 2}, {0: (5, 3, 4)}),
        _FakeProtocol(2, {0: 0}, {0: (6, 9, 9)}),  # newer sn resets fd
    ]
    LoopChecker(protos, check_ordering=True).check_destination(0)


def test_ordering_violation_older_downstream_sn():
    protos = [
        _FakeProtocol(0),
        _FakeProtocol(1, {0: 2}, {0: (6, 3, 4)}),
        _FakeProtocol(2, {0: 0}, {0: (5, 1, 1)}),
    ]
    with pytest.raises(LoopError):
        LoopChecker(protos, check_ordering=True).check_destination(0)


def test_loop_error_names_the_cycle():
    protos = [
        _FakeProtocol(0),
        _FakeProtocol(1, {0: 2}),
        _FakeProtocol(2, {0: 3}),
        _FakeProtocol(3, {0: 2}),  # 2 -> 3 -> 2, entered from 1
    ]
    with pytest.raises(LoopError) as excinfo:
        LoopChecker(protos, check_ordering=False).check_destination(0)
    # The message pinpoints the cycle, not the entry path.
    assert "[2, 3, 2]" in str(excinfo.value)


def test_ordering_violation_mid_chain_detected():
    # 1 -> 2 is healthy; the older-sn hop hides at 2 -> 3, mid-walk.
    protos = [
        _FakeProtocol(0),
        _FakeProtocol(1, {0: 2}, {0: (7, 4, 5)}),
        _FakeProtocol(2, {0: 3}, {0: (7, 3, 3)}),
        _FakeProtocol(3, {0: 0}, {0: (6, 1, 1)}),  # down_sn < up_sn
    ]
    with pytest.raises(LoopError):
        LoopChecker(protos, check_ordering=True).check_destination(0)


def test_ordering_violation_recorded_in_violations_list():
    protos = [
        _FakeProtocol(0),
        _FakeProtocol(1, {0: 2}, {0: (6, 3, 4)}),
        _FakeProtocol(2, {0: 0}, {0: (5, 1, 1)}),
    ]
    checker = LoopChecker(protos, check_ordering=True)
    with pytest.raises(LoopError):
        checker.check_destination(0)
    assert checker.violations == [(1, 2, 0)]


def test_equal_sn_equal_fd_is_a_violation():
    # FDC requires *strict* decrease at equal sn; fd equality along a hop
    # would allow the mutual-successor pattern the paper's SDC forbids.
    protos = [
        _FakeProtocol(0),
        _FakeProtocol(1, {0: 2}, {0: (5, 3, 4)}),
        _FakeProtocol(2, {0: 0}, {0: (5, 3, 3)}),
    ]
    with pytest.raises(LoopError):
        LoopChecker(protos, check_ordering=True).check_destination(0)


def test_early_advance_then_fd_ordering_resumes_downstream():
    # 2 advanced past 1 (down_sn > up_sn: benign), and 2 -> 3 must again
    # satisfy the equal-sn strict-fd decrease.  Nothing raises here.
    protos = [
        _FakeProtocol(0),
        _FakeProtocol(1, {0: 2}, {0: (5, 3, 4)}),
        _FakeProtocol(2, {0: 3}, {0: (6, 9, 9)}),
        _FakeProtocol(3, {0: 0}, {0: (6, 2, 2)}),
    ]
    LoopChecker(protos, check_ordering=True).check_destination(0)


def test_missing_metric_skips_ordering_but_still_walks():
    # A protocol returning route_metric=None is audited for acyclicity
    # only — and a loop must still be caught on that same walk.
    protos = [
        _FakeProtocol(0),
        _FakeProtocol(1, {0: 2}),  # no metrics at all
        _FakeProtocol(2, {0: 1}),
    ]
    with pytest.raises(LoopError):
        LoopChecker(protos, check_ordering=True).check_destination(0)


def test_hop_into_destination_is_not_ordering_checked():
    # The destination's own metric (sn resets, fd 0) never constrains the
    # last hop; only intermediate hops are compared.
    protos = [
        _FakeProtocol(0, {}, {0: (0, 0, 0)}),
        _FakeProtocol(1, {0: 0}, {0: (9, 1, 1)}),
    ]
    LoopChecker(protos, check_ordering=True).check_destination(0)


def test_check_ordering_false_ignores_metric_violations():
    protos = [
        _FakeProtocol(0),
        _FakeProtocol(1, {0: 2}, {0: (6, 3, 4)}),
        _FakeProtocol(2, {0: 0}, {0: (5, 1, 1)}),  # would violate ordering
    ]
    checker = LoopChecker(protos, check_ordering=False)
    checker.check_destination(0)
    assert checker.violations == []


def test_install_wires_hooks():
    protos = [_FakeProtocol(0), _FakeProtocol(1, {0: 0})]
    checker = LoopChecker(protos, check_ordering=False).install()
    assert all(p.table_change_hook is not None for p in protos)
    protos[1].table_change_hook(protos[1], 0)
    assert checker.checks_run == 1


def test_check_all_covers_destinations():
    protos = [_FakeProtocol(0), _FakeProtocol(1, {0: 0, 2: 0}), _FakeProtocol(2)]
    checker = LoopChecker(protos, check_ordering=False)
    checker.check_all([0, 2])
    assert checker.checks_run == 2
