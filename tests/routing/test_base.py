"""Unit tests for the routing base layer (packet buffer, helpers)."""

from repro.routing.base import PacketBuffer
from repro.sim import Simulator


class _Pkt:
    def __init__(self, tag):
        self.tag = tag


def test_buffer_push_and_pop_all():
    sim = Simulator()
    buf = PacketBuffer(sim)
    a, b = _Pkt("a"), _Pkt("b")
    assert buf.push(5, a)
    assert buf.push(5, b)
    assert buf.pop_all(5) == [a, b]
    assert buf.pop_all(5) == []


def test_buffer_is_per_destination():
    sim = Simulator()
    buf = PacketBuffer(sim)
    a, b = _Pkt("a"), _Pkt("b")
    buf.push(1, a)
    buf.push(2, b)
    assert buf.pop_all(1) == [a]
    assert buf.pop_all(2) == [b]


def test_buffer_capacity():
    sim = Simulator()
    buf = PacketBuffer(sim, capacity_per_dst=2)
    assert buf.push(1, _Pkt(0))
    assert buf.push(1, _Pkt(1))
    assert not buf.push(1, _Pkt(2))
    assert buf.pending(1) == 2


def test_buffer_drop_all():
    sim = Simulator()
    buf = PacketBuffer(sim)
    pkts = [_Pkt(i) for i in range(3)]
    for p in pkts:
        buf.push(9, p)
    assert buf.drop_all(9) == pkts
    assert buf.pending(9) == 0


def test_buffer_ages_out_stale_packets():
    sim = Simulator()
    buf = PacketBuffer(sim, max_age=10.0)
    old = _Pkt("old")
    buf.push(3, old)
    sim.run(until=20.0)
    fresh = _Pkt("fresh")
    buf.push(3, fresh)
    assert buf.pop_all(3) == [fresh]


def test_buffer_destinations():
    sim = Simulator()
    buf = PacketBuffer(sim)
    buf.push(1, _Pkt("x"))
    buf.push(4, _Pkt("y"))
    assert sorted(buf.destinations()) == [1, 4]


def test_pending_unknown_destination_is_zero():
    assert PacketBuffer(Simulator()).pending(42) == 0
