"""Unit and property tests for sequence-number machinery."""

from hypothesis import given
from hypothesis import strategies as st

from repro.routing.seqnum import (
    COUNTER_MAX,
    LabeledSeq,
    circular_geq,
    circular_greater,
)

# ----------------------------------------------------------------------
# LabeledSeq (LDR's timestamp+counter labels)
# ----------------------------------------------------------------------


def test_labeled_seq_ordering_by_counter():
    assert LabeledSeq(0, 1) > LabeledSeq(0, 0)
    assert LabeledSeq(0, 0) < LabeledSeq(0, 5)


def test_labeled_seq_timestamp_dominates():
    assert LabeledSeq(10.0, 0) > LabeledSeq(5.0, 999)


def test_labeled_seq_equality_and_hash():
    assert LabeledSeq(1.0, 2) == LabeledSeq(1.0, 2)
    assert hash(LabeledSeq(1.0, 2)) == hash(LabeledSeq(1.0, 2))
    assert LabeledSeq(1.0, 2) != LabeledSeq(1.0, 3)


def test_incremented_is_strictly_greater():
    seq = LabeledSeq(0.0, 0)
    nxt = seq.incremented(now=100.0)
    assert nxt > seq
    assert nxt.counter == 1


def test_increment_wraps_counter_with_fresh_timestamp():
    seq = LabeledSeq(0.0, COUNTER_MAX)
    nxt = seq.incremented(now=500.0)
    assert nxt.counter == 0
    assert nxt.timestamp == 500.0
    assert nxt > seq  # monotone across the wrap


def test_labeled_seq_is_immutable_increment():
    seq = LabeledSeq(0.0, 3)
    seq.incremented(now=1.0)
    assert seq.counter == 3


@given(
    ts=st.floats(0, 1e6),
    counter=st.integers(0, COUNTER_MAX),
    now=st.floats(1e6 + 1, 2e6),
)
def test_property_increment_monotone(ts, counter, now):
    """incremented() is strictly increasing as long as time moves forward."""
    seq = LabeledSeq(ts, counter)
    assert seq.incremented(now) > seq


@given(st.lists(st.tuples(st.floats(0, 100), st.integers(0, 100)),
                min_size=2, max_size=10))
def test_property_total_order(pairs):
    seqs = [LabeledSeq(ts, c) for ts, c in pairs]
    ordered = sorted(seqs)
    for a, b in zip(ordered, ordered[1:]):
        assert a <= b


# ----------------------------------------------------------------------
# AODV circular 32-bit comparison
# ----------------------------------------------------------------------


def test_circular_greater_basic():
    assert circular_greater(5, 3)
    assert not circular_greater(3, 5)
    assert not circular_greater(4, 4)


def test_circular_greater_survives_rollover():
    top = 2 ** 32 - 1
    assert circular_greater(1, top)
    assert not circular_greater(top, 1)


def test_circular_geq():
    assert circular_geq(4, 4)
    assert circular_geq(5, 4)
    assert not circular_geq(4, 5)


@given(a=st.integers(0, 2 ** 32 - 1), b=st.integers(0, 2 ** 32 - 1))
def test_property_circular_antisymmetric(a, b):
    """For distinct values not exactly half the ring apart, exactly one of
    a>b, b>a holds."""
    if a == b:
        assert not circular_greater(a, b)
        assert not circular_greater(b, a)
    elif (a - b) % (2 ** 32) != 2 ** 31:
        assert circular_greater(a, b) != circular_greater(b, a)


@given(a=st.integers(0, 2 ** 32 - 1), k=st.integers(1, 2 ** 31 - 1))
def test_property_small_increments_are_fresher(a, k):
    assert circular_greater((a + k) % 2 ** 32, a)
