"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main

TINY = ["--nodes", "10", "--flows", "2", "--duration", "6", "--seed", "3"]


def test_run_prints_json(capsys):
    assert main(["run", "--protocol", "ldr"] + TINY) == 0
    payload = json.loads(capsys.readouterr().out)
    assert 0.0 <= payload["delivery_ratio"] <= 1.0
    assert "network_load" in payload


def test_compare_prints_rows(capsys):
    assert main(["compare", "--protocols", "ldr,aodv"] + TINY) == 0
    out = capsys.readouterr().out
    assert "ldr" in out and "aodv" in out


def test_compare_rejects_unknown_protocol(capsys):
    assert main(["compare", "--protocols", "ospf"] + TINY) == 2


def test_audit_reports_loop_freedom(capsys):
    assert main(["audit"] + TINY) == 0
    out = capsys.readouterr().out
    assert "YES" in out


def test_connectivity_prints_bound(capsys):
    assert main(["connectivity", "--samples", "3"] + TINY) == 0
    out = capsys.readouterr().out
    assert "connectivity" in out


def test_figure_runs_tiny(capsys):
    assert main(["figure", "fig2", "--duration", "5", "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "ldr" in out


def test_table1_runs_tiny(capsys):
    assert main(["table1", "--flows", "2", "--duration", "4",
                 "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "LDR" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
