"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main

TINY = ["--nodes", "10", "--flows", "2", "--duration", "6", "--seed", "3"]


def test_run_prints_json(capsys):
    assert main(["run", "--protocol", "ldr"] + TINY) == 0
    payload = json.loads(capsys.readouterr().out)
    assert 0.0 <= payload["delivery_ratio"] <= 1.0
    assert "network_load" in payload


def test_profile_writes_flame_file(capsys, tmp_path):
    out = tmp_path / "profile.folded"
    assert main(["profile", "--flame", str(out), "--interval", "1"]
                + TINY) == 0
    captured = capsys.readouterr()
    # Tiny runs finish in milliseconds, so the folded file may have few
    # (or zero) samples — but it must exist and be well-formed, and the
    # deterministic counters must still be reported.
    assert out.exists()
    for line in out.read_text(encoding="utf-8").splitlines():
        stack, count = line.rsplit(" ", 1)
        assert stack and int(count) > 0
    assert "flame:" in captured.err
    assert "sim.events_dispatched" in captured.err


def test_profile_scheduler_flag_accepted(capsys):
    assert main(["profile", "--scheduler", "heap", "--top", "3"] + TINY) == 0
    assert "sim.events_dispatched" in capsys.readouterr().err


def test_compare_prints_rows(capsys):
    assert main(["compare", "--protocols", "ldr,aodv"] + TINY) == 0
    out = capsys.readouterr().out
    assert "ldr" in out and "aodv" in out


def test_compare_rejects_unknown_protocol(capsys):
    assert main(["compare", "--protocols", "ospf"] + TINY) == 2


def test_audit_reports_loop_freedom(capsys):
    assert main(["audit"] + TINY) == 0
    out = capsys.readouterr().out
    assert "YES" in out


def test_connectivity_prints_bound(capsys):
    assert main(["connectivity", "--samples", "3"] + TINY) == 0
    out = capsys.readouterr().out
    assert "connectivity" in out


def test_figure_runs_tiny(capsys):
    assert main(["figure", "fig2", "--duration", "5", "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "ldr" in out


def test_table1_runs_tiny(capsys):
    assert main(["table1", "--flows", "2", "--duration", "4",
                 "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "LDR" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_table1_with_jobs_and_cache(capsys, tmp_path):
    cache_dir = str(tmp_path / "cli-cache")
    argv = ["table1", "--flows", "2", "--duration", "4", "--trials", "1",
            "--jobs", "2", "--cache-dir", cache_dir]
    assert main(argv) == 0
    first = capsys.readouterr().out
    # Second invocation replays from cache and prints identical numbers.
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert second == first
    from repro.exec import ResultCache

    assert ResultCache(cache_dir).stats()["entries"] > 0


def test_no_cache_leaves_store_empty(tmp_path):
    cache_dir = str(tmp_path / "cli-cache")
    assert main(["table1", "--flows", "2", "--duration", "4", "--trials",
                 "1", "--no-cache", "--cache-dir", cache_dir]) == 0
    from repro.exec import ResultCache

    assert ResultCache(cache_dir).stats()["entries"] == 0


def test_cache_subcommand_stats_list_clear(capsys, tmp_path):
    cache_dir = str(tmp_path / "cli-cache")
    assert main(["compare", "--protocols", "ldr", "--cache-dir", cache_dir]
                + TINY) == 0
    capsys.readouterr()

    assert main(["cache", "--cache-dir", cache_dir, "--list"]) == 0
    out = capsys.readouterr().out
    assert "entries   : 1" in out
    assert "ldr" in out

    assert main(["cache", "--cache-dir", cache_dir, "--clear"]) == 0
    assert "removed 1" in capsys.readouterr().out

    assert main(["cache", "--cache-dir", cache_dir]) == 0
    assert "entries   : 0" in capsys.readouterr().out
