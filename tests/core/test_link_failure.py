"""The MAC retry-exhaustion path, tested directly.

When unicast retries run out, the MAC reports a link failure upward;
LDR's ``_on_data_link_failure`` must invalidate every route through the
dead next hop and broadcast a RERR — the hello-free link-break detection
the on-demand protocols rely on (Section 3.3).
"""

from repro.core import LdrProtocol
from repro.mobility import StaticPlacement
from tests.conftest import Network


def _established_line(count):
    net = Network(LdrProtocol, StaticPlacement.line(count, 200.0))
    net.send(0, count - 1)
    net.run(1.0)
    assert len(net.delivered_to(count - 1)) == 1
    return net


def test_retry_exhaustion_invalidates_route_and_sends_rerr():
    net = _established_line(3)
    assert net.protocols[0].table[2].valid
    give_ups = net.metrics.mac_give_ups
    rerrs = net.metrics.control_initiated.get("rerr", 0)
    net.nodes[1].crash()  # next hop dies silently: no RERR from *it*
    net.send(0, 2)
    net.run(2.0)  # enough for 7 retries + backoff to exhaust
    assert net.metrics.mac_give_ups > give_ups  # the MAC did give up
    assert not net.protocols[0].table[2].valid  # route torn down
    assert net.metrics.control_initiated.get("rerr", 0) > rerrs


def test_originator_buffers_and_rediscovers_after_link_failure():
    net = _established_line(3)
    net.nodes[1].crash()
    net.send(0, 2)
    net.run(2.0)
    # We originated the packet, so it is parked while discovery retries
    # (the line is cut, so discovery cannot succeed — the packet must be
    # buffered or eventually dropped, never silently lost).
    protocol = net.protocols[0]
    assert (protocol.buffer.pending(2) > 0
            or net.metrics.data_dropped.get("discovery_failed", 0) > 0
            or net.metrics.data_dropped.get("buffer_full", 0) > 0)
    assert 2 in protocol.computations or protocol.buffer.pending(2) == 0


def test_forwarder_drops_with_link_break_reason():
    net = _established_line(4)
    net.nodes[2].crash()  # node 1 now forwards into a dead next hop
    drops = net.metrics.data_dropped.get("link_break", 0)
    net.send(0, 3)
    net.run(2.5)
    assert net.metrics.data_dropped.get("link_break", 0) > drops
    assert not net.protocols[1].table[3].valid


def test_all_routes_through_dead_hop_are_invalidated():
    # Node 1 relays toward both 2 and 3; one link failure must break both.
    net = Network(LdrProtocol, StaticPlacement.line(4, 200.0))
    net.send(0, 2)
    net.send(0, 3)
    net.run(1.5)
    table = net.protocols[0].table
    assert table[2].valid and table[3].valid
    assert table[2].next_hop == 1 and table[3].next_hop == 1
    net.nodes[1].crash()
    net.send(0, 3)  # one failed forward triggers _invalidate_via(1)
    net.run(2.0)
    assert not table[2].valid
    assert not table[3].valid
