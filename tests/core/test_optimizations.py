"""Directed tests of LDR's five Section-4 optimizations."""

from repro.core import LdrConfig, LdrProtocol
from repro.core.messages import LdrRrep, LdrRreq
from repro.core.state import LdrRouteEntry
from repro.mobility import StaticPlacement
from repro.routing.seqnum import LabeledSeq
from tests.conftest import Network

SN = LabeledSeq(0.0, 1)


def _inject(protocol, dst, seqno, dist, fd, next_hop, lifetime=1e9):
    entry = LdrRouteEntry(dst)
    entry.seqno, entry.dist, entry.fd = seqno, dist, fd
    entry.next_hop, entry.valid = next_hop, True
    entry.expiry = protocol.sim.now + lifetime
    protocol.table[dst] = entry
    return entry


# ----------------------------------------------------------------------
# Optimal TTL (initial ring sized by D - FD + LOCAL_ADD_TTL)
# ----------------------------------------------------------------------


def test_optimal_ttl_uses_distance_minus_answering_fd():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0),
                  config=LdrConfig(optimal_ttl=True, local_add_ttl=2,
                                   reduced_distance_factor=None))
    protocol = net.protocols[0]
    entry = _inject(protocol, 2, SN, 6, 4, next_hop=1)
    assert protocol._initial_ttl(entry, attempt=0) == 6 - 4 + 2


def test_optimal_ttl_respects_reduced_distance():
    config = LdrConfig(optimal_ttl=True, local_add_ttl=2,
                       reduced_distance_factor=0.5)
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0), config=config)
    protocol = net.protocols[0]
    entry = _inject(protocol, 2, SN, 6, 4, next_hop=1)
    # answering distance = max(1, int(0.5*4)) = 2 -> ttl = 6 and threshold
    # (7) not exceeded.
    assert protocol._initial_ttl(entry, attempt=0) == 6


def test_optimal_ttl_disabled_falls_back_to_ring_start():
    config = LdrConfig(optimal_ttl=False, ttl_start=2)
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0), config=config)
    protocol = net.protocols[0]
    entry = _inject(protocol, 2, SN, 6, 4, next_hop=1)
    assert protocol._initial_ttl(entry, attempt=0) == 2


def test_ttl_escalates_to_diameter_past_threshold():
    config = LdrConfig(ttl_start=6, ttl_increment=3, ttl_threshold=7,
                       net_diameter=35, optimal_ttl=False)
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0), config=config)
    protocol = net.protocols[0]
    assert protocol._initial_ttl(None, attempt=0) == 6
    assert protocol._initial_ttl(None, attempt=1) == 35  # 9 > threshold
    assert protocol._initial_ttl(None, attempt=2) == 35  # final: full flood


# ----------------------------------------------------------------------
# Minimum lifetime (don't answer with a nearly-expired route)
# ----------------------------------------------------------------------


def test_min_lifetime_makes_node_relay_instead_of_reply():
    config = LdrConfig(min_reply_lifetime=1.0)
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0), config=config)
    relay = net.protocols[1]
    _inject(relay, 2, SN, 1, 1, next_hop=2, lifetime=0.2)  # about to expire
    sent = []
    relay.mac.send = lambda p, next_hop=None, on_fail=None: sent.append(p)
    rreq = LdrRreq(dst=2, sn_dst=None, rreqid=1, src=0,
                   sn_src=LabeledSeq(0.0, 0), fd=None, ttl=5)
    relay.on_packet(rreq, from_id=0)
    net.run(0.1)
    assert any(isinstance(p, LdrRreq) for p in sent)
    assert not any(isinstance(p, LdrRrep) for p in sent)


def test_fresh_route_replies_instead_of_relaying():
    config = LdrConfig(min_reply_lifetime=1.0)
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0), config=config)
    relay = net.protocols[1]
    _inject(relay, 2, SN, 1, 1, next_hop=2, lifetime=30.0)
    sent = []
    relay.mac.send = lambda p, next_hop=None, on_fail=None: sent.append(p)
    rreq = LdrRreq(dst=2, sn_dst=None, rreqid=1, src=0,
                   sn_src=LabeledSeq(0.0, 0), fd=None, ttl=5)
    relay.on_packet(rreq, from_id=0)
    net.run(0.1)
    assert any(isinstance(p, LdrRrep) for p in sent)
    assert not any(isinstance(p, LdrRreq) for p in sent)


# ----------------------------------------------------------------------
# Multiple RREPs (only strictly stronger replies cross a relay)
# ----------------------------------------------------------------------


def test_multiple_rreps_forwards_stronger_reply():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0),
                  config=LdrConfig(multiple_rreps=True))
    relay = net.protocols[1]
    # Engage the relay in computation (0, 5).
    rreq = LdrRreq(dst=2, sn_dst=None, rreqid=5, src=0,
                   sn_src=LabeledSeq(0.0, 0), fd=None, ttl=5)
    relay.on_packet(rreq, from_id=0)
    sent = []
    relay.mac.send = lambda p, next_hop=None, on_fail=None: sent.append(p)
    relay.on_packet(LdrRrep(dst=2, sn_dst=SN, src=0, rreqid=5, dist=3,
                            lifetime=5.0), from_id=2)
    relay.on_packet(LdrRrep(dst=2, sn_dst=SN, src=0, rreqid=5, dist=1,
                            lifetime=5.0), from_id=2)
    replies = [p for p in sent if isinstance(p, LdrRrep)]
    assert len(replies) == 2  # the second was strictly stronger


def test_multiple_rreps_drops_equal_or_weaker_reply():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0),
                  config=LdrConfig(multiple_rreps=True))
    relay = net.protocols[1]
    rreq = LdrRreq(dst=2, sn_dst=None, rreqid=5, src=0,
                   sn_src=LabeledSeq(0.0, 0), fd=None, ttl=5)
    relay.on_packet(rreq, from_id=0)
    sent = []
    relay.mac.send = lambda p, next_hop=None, on_fail=None: sent.append(p)
    relay.on_packet(LdrRrep(dst=2, sn_dst=SN, src=0, rreqid=5, dist=1,
                            lifetime=5.0), from_id=2)
    relay.on_packet(LdrRrep(dst=2, sn_dst=SN, src=0, rreqid=5, dist=1,
                            lifetime=5.0), from_id=2)
    relay.on_packet(LdrRrep(dst=2, sn_dst=SN, src=0, rreqid=5, dist=3,
                            lifetime=5.0), from_id=2)
    replies = [p for p in sent if isinstance(p, LdrRrep)]
    assert len(replies) == 1


def test_single_rrep_mode_forwards_only_first():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0),
                  config=LdrConfig(multiple_rreps=False))
    relay = net.protocols[1]
    rreq = LdrRreq(dst=2, sn_dst=None, rreqid=5, src=0,
                   sn_src=LabeledSeq(0.0, 0), fd=None, ttl=5)
    relay.on_packet(rreq, from_id=0)
    sent = []
    relay.mac.send = lambda p, next_hop=None, on_fail=None: sent.append(p)
    relay.on_packet(LdrRrep(dst=2, sn_dst=SN, src=0, rreqid=5, dist=3,
                            lifetime=5.0), from_id=2)
    relay.on_packet(LdrRrep(dst=2, sn_dst=SN, src=0, rreqid=5, dist=1,
                            lifetime=5.0), from_id=2)
    replies = [p for p in sent if isinstance(p, LdrRrep)]
    assert len(replies) == 1
