"""Focused tests of LDR's RERR semantics (destination-controlled numbers).

AODV increments the broken destination's sequence number in its RERRs;
LDR must NOT — the number stays with its owner, and the RERR merely
invalidates routes through the failed link.
"""

from repro.core import LdrProtocol
from repro.core.messages import LdrRerr
from repro.mobility import StaticPlacement
from tests.conftest import Network


def _established_line(count=5):
    net = Network(LdrProtocol, StaticPlacement.line(count, 200.0))
    net.send(0, count - 1)
    net.run(1.0)
    return net


def test_rerr_does_not_touch_sequence_numbers():
    net = _established_line()
    entry = net.protocols[1].table[4]
    sn_before = entry.seqno
    net.protocols[1].on_packet(LdrRerr([(4, sn_before)]), from_id=2)
    assert not entry.valid
    assert entry.seqno == sn_before  # unchanged: only node 4 may move it
    assert net.protocols[4].own_seq_increments == 0


def test_rerr_only_invalidates_routes_through_sender():
    net = _established_line()
    entry = net.protocols[1].table[4]
    assert entry.next_hop == 2
    # RERR from node 0 (not our next hop toward 4): ignored.
    net.protocols[1].on_packet(LdrRerr([(4, entry.seqno)]), from_id=0)
    assert entry.valid
    # RERR from node 2 (our next hop): invalidates.
    net.protocols[1].on_packet(LdrRerr([(4, entry.seqno)]), from_id=2)
    assert not entry.valid


def test_rerr_propagation_is_bounded():
    """A RERR chain dies once no upstream node routes through the sender
    — no broadcast storm."""
    net = _established_line()
    rerr_tx_before = net.metrics.control_transmissions.get("rerr", 0)
    net.protocols[3].on_packet(LdrRerr([(4, None)]), from_id=4)
    net.run(2.0)
    rerr_tx = net.metrics.control_transmissions.get("rerr", 0) - rerr_tx_before
    # One relay per upstream hop at most (3->2->1->0): bounded, not O(n^2).
    assert 0 < rerr_tx <= 4


def test_rerr_ignores_unknown_destinations():
    net = _established_line()
    protocol = net.protocols[1]
    tables_before = dict(protocol.table)
    protocol.on_packet(LdrRerr([(99, None)]), from_id=2)
    assert protocol.table == tables_before


def test_labels_survive_invalidation_for_future_ndc():
    """The invalidated entry keeps (sn, fd) so a later stale advertisement
    with the same number and a non-smaller distance is still rejected."""
    net = _established_line()
    protocol = net.protocols[1]
    entry = protocol.table[4]
    fd_before = entry.fd
    protocol.on_packet(LdrRerr([(4, entry.seqno)]), from_id=2)
    from repro.core.messages import LdrRrep

    protocol.on_packet(LdrRrep(dst=4, sn_dst=entry.seqno, src=1, rreqid=5,
                               dist=fd_before, lifetime=5.0), from_id=0)
    assert not protocol.table[4].valid  # NDC rejected the stale offer
