"""The paper's core governance claim: only a destination increments its
own sequence number, under every code path."""

import pytest

from repro.core import LdrProtocol
from repro.mobility import StaticPlacement
from repro.routing.seqnum import LabeledSeq
from tests.conftest import Network


def _churny_run(seed):
    placement = StaticPlacement.grid(3, 3, 200.0)
    net = Network(LdrProtocol, placement, seed=seed)
    for src, dst in ((0, 8), (2, 6), (6, 0), (8, 2)):
        net.send(src, dst)
    net.run(2.0)
    net.placement.move(4, 50_000.0, 0.0)
    for src, dst in ((0, 8), (2, 6)):
        net.send(src, dst)
    net.run(8.0)
    return net


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_stored_seqno_never_exceeds_owners(seed):
    """No node's stored number for D may exceed D's own number: numbers
    originate at D and only travel outward."""
    net = _churny_run(seed)
    for protocol in net.protocols.values():
        for dst, entry in protocol.table.items():
            if entry.seqno is None:
                continue
            owner_seq = net.protocols[dst].own_seq
            assert entry.seqno <= owner_seq, (
                "node %d holds sn %r for %d but the owner is at %r"
                % (protocol.node_id, entry.seqno, dst, owner_seq))


@pytest.mark.parametrize("seed", [1, 2])
def test_increment_counter_matches_label(seed):
    """own_seq_increments is an accurate count of label movements."""
    net = _churny_run(seed)
    for protocol in net.protocols.values():
        if protocol.own_seq_increments == 0:
            assert protocol.own_seq == LabeledSeq(0.0, 0)
        else:
            assert protocol.own_seq > LabeledSeq(0.0, 0)


def test_relays_never_fabricate_numbers():
    """A relay strengthening a solicitation may only use numbers it has
    *stored* — exercised here by checking the strengthened sn is always a
    label some node legitimately held."""
    net = _churny_run(4)
    # Every stored label's counter must be no greater than the largest
    # counter any destination ever issued.
    max_issued = max(p.own_seq.counter for p in net.protocols.values())
    for protocol in net.protocols.values():
        for entry in protocol.table.values():
            if entry.seqno is not None:
                assert entry.seqno.counter <= max_issued
