"""Unit and property tests for NDC, FDC, SDC and the T-bit rule.

Sequence numbers in these tests are plain integers (the predicates only
need a total order); the protocol itself uses LabeledSeq.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.conditions import (
    INFINITY,
    fdc_violated,
    ndc_accepts,
    sdc_allows_reply,
    strengthen_solicitation,
    t_bit_update,
)

sn = st.one_of(st.none(), st.integers(0, 20))
dist = st.integers(0, 30)
fd = st.integers(1, 30)


# ----------------------------------------------------------------------
# NDC
# ----------------------------------------------------------------------


def test_ndc_no_information_accepts_anything():
    assert ndc_accepts(None, INFINITY, 0, 100)


def test_ndc_higher_sequence_number_accepts():
    assert ndc_accepts(5, 2, 6, 999)


def test_ndc_equal_sn_requires_distance_below_fd():
    assert ndc_accepts(5, 3, 5, 2)
    assert not ndc_accepts(5, 3, 5, 3)
    assert not ndc_accepts(5, 3, 5, 4)


def test_ndc_lower_sequence_number_rejected():
    assert not ndc_accepts(5, 100, 4, 0)


@given(entry_sn=st.integers(0, 20), entry_fd=fd, adv_sn=st.integers(0, 20),
       adv_dist=dist)
def test_property_ndc_equivalent_to_paper_eq_1_2(entry_sn, entry_fd, adv_sn,
                                                 adv_dist):
    expected = (adv_sn > entry_sn) or (adv_sn == entry_sn and adv_dist < entry_fd)
    assert ndc_accepts(entry_sn, entry_fd, adv_sn, adv_dist) == expected


# ----------------------------------------------------------------------
# FDC
# ----------------------------------------------------------------------


def test_fdc_violated_when_equal_sn_and_fd_not_smaller():
    assert fdc_violated(5, 4, 5, 4)
    assert fdc_violated(5, 5, 5, 4)


def test_fdc_ok_with_smaller_fd():
    assert not fdc_violated(5, 3, 5, 4)


def test_fdc_ok_with_different_sn():
    assert not fdc_violated(6, 100, 5, 4)
    assert not fdc_violated(4, 100, 5, 4)


def test_fdc_no_information_is_not_a_violation():
    assert not fdc_violated(None, INFINITY, 5, 4)


# ----------------------------------------------------------------------
# SDC
# ----------------------------------------------------------------------


def test_sdc_requires_active_route():
    assert not sdc_allows_reply(False, 9, 0, 5, 10, False)


def test_sdc_higher_sn_always_allows():
    assert sdc_allows_reply(True, 6, 999, 5, 1, True)


def test_sdc_equal_sn_needs_short_distance_and_clear_t():
    assert sdc_allows_reply(True, 5, 3, 5, 4, False)
    assert not sdc_allows_reply(True, 5, 4, 5, 4, False)
    assert not sdc_allows_reply(True, 5, 3, 5, 4, True)


def test_sdc_ignore_t_bit():
    assert sdc_allows_reply(True, 5, 3, 5, 4, True, ignore_t_bit=True)


def test_sdc_unknown_request_sn_any_active_route_answers():
    assert sdc_allows_reply(True, 0, 7, None, INFINITY, False)


def test_sdc_older_sn_rejected():
    assert not sdc_allows_reply(True, 4, 0, 5, INFINITY, False)


@given(my_sn=st.integers(0, 20), my_dist=dist, req_sn=sn, t=st.booleans())
def test_property_sdc_reply_satisfies_requesters_ndc(my_sn, my_dist, req_sn, t):
    """The paper's Proposition 1, specialized: an advertisement initiated
    under SDC is acceptable under NDC at the node that issued the
    solicitation (with the solicitation's own invariants)."""
    req_fd = 10
    if sdc_allows_reply(True, my_sn, my_dist, req_sn, req_fd, t):
        # The requester's entry is (req_sn, req_fd); the advertisement is
        # (my_sn, my_dist).
        assert ndc_accepts(req_sn, req_fd, my_sn, my_dist)


# ----------------------------------------------------------------------
# T-bit update (Eq. 8)
# ----------------------------------------------------------------------


def test_t_bit_cleared_by_fresher_relay():
    assert t_bit_update(6, 99, 5, 4, True) is False


def test_t_bit_unchanged_when_ordering_held():
    assert t_bit_update(5, 3, 5, 4, False) is False
    assert t_bit_update(5, 3, 5, 4, True) is True


def test_t_bit_set_on_violation():
    assert t_bit_update(5, 4, 5, 4, False) is True
    assert t_bit_update(5, 9, 5, 4, False) is True


def test_t_bit_unchanged_without_information():
    assert t_bit_update(None, INFINITY, 5, 4, True) is True
    assert t_bit_update(None, INFINITY, 5, 4, False) is False


def test_t_bit_unchanged_with_older_relay_sn():
    assert t_bit_update(4, 0, 5, 4, False) is False


@given(my_sn=sn, my_fd=fd, req_sn=st.integers(0, 20), req_fd=fd,
       t=st.booleans())
def test_property_t_bit_set_iff_fdc_violated_or_carried(my_sn, my_fd, req_sn,
                                                        req_fd, t):
    out = t_bit_update(my_sn, my_fd, req_sn, req_fd, t)
    if fdc_violated(my_sn, my_fd, req_sn, req_fd):
        assert out is True
    if my_sn is not None and my_sn > req_sn:
        assert out is False


# ----------------------------------------------------------------------
# solicitation strengthening (Eqs. 5–6)
# ----------------------------------------------------------------------


def test_strengthen_with_fresher_sn_replaces_both():
    assert strengthen_solicitation(7, 2, 5, 9) == (7, 2)


def test_strengthen_with_equal_sn_takes_min_fd():
    assert strengthen_solicitation(5, 2, 5, 9) == (5, 2)
    assert strengthen_solicitation(5, 9, 5, 2) == (5, 2)


def test_strengthen_with_older_or_no_information_keeps_request():
    assert strengthen_solicitation(4, 0, 5, 9) == (5, 9)
    assert strengthen_solicitation(None, INFINITY, 5, 9) == (5, 9)


@given(my_sn=sn, my_fd=fd, req_sn=sn,
       req_fd=st.one_of(st.just(INFINITY), fd))
def test_property_strengthening_is_monotone(my_sn, my_fd, req_sn, req_fd):
    """The strengthened solicitation is never weaker: its (sn, -fd) is
    lexicographically >= both inputs' where comparable."""
    out_sn, out_fd = strengthen_solicitation(my_sn, my_fd, req_sn, req_fd)
    # Never weaker than the original request.
    if req_sn is not None:
        assert out_sn is not None and out_sn >= req_sn
        if out_sn == req_sn:
            assert out_fd <= req_fd
    # Never weaker than the relay's own state.
    if my_sn is not None:
        if out_sn == my_sn:
            assert out_fd <= my_fd
        elif req_sn is not None:
            assert out_sn > my_sn
