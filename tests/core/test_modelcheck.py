"""Exhaustive model checking of the LDR abstraction (Theorems 1-4 on
tiny topologies) and the broken-model counterexample."""

import pytest

from repro.core.modelcheck import (
    BrokenModel,
    LdrModel,
    LoopFound,
    ModelChecker,
    verify_topology,
)


def test_triangle_is_loop_free():
    states = verify_topology(
        links=[(0, 1), (1, 2), (0, 2)], dst=0)
    assert states > 10


def test_line_is_loop_free():
    states = verify_topology(links=[(0, 1), (1, 2), (2, 3)], dst=0)
    assert states > 10


def test_square_with_flapping_link_is_loop_free():
    """Topology changes (link up/down) interleaved with every message
    schedule: the paper's hardest case in miniature."""
    states = verify_topology(
        links=[(0, 1), (1, 2), (2, 3), (3, 0)], dst=0,
        flappable=[(3, 0)],
    )
    assert states > 100


def test_diamond_with_flap_is_loop_free():
    states = verify_topology(
        links=[(0, 1), (0, 2), (1, 3), (2, 3), (1, 2)], dst=0,
        flappable=[(0, 1)], max_states=400_000,
    )
    assert states > 100


def test_broken_model_without_fd_loops():
    """Replacing the feasible distance by the current distance (plain
    distance vector) admits a looping state — the checker finds it, which
    shows (a) fd is load-bearing and (b) the checker has teeth."""
    with pytest.raises(LoopFound):
        verify_topology(
            links=[(0, 1), (1, 2), (0, 2)], dst=0,
            flappable=[(0, 1), (0, 2)],
            model=BrokenModel(), max_states=400_000,
        )


def test_ldr_model_same_scenario_stays_loop_free():
    """The exact scenario that breaks the strawman is safe under LDR."""
    states = verify_topology(
        links=[(0, 1), (1, 2), (0, 2)], dst=0,
        flappable=[(0, 1), (0, 2)], max_states=400_000,
    )
    assert states > 100


def test_ndc_update_rule_properties():
    model = LdrModel()
    from repro.core.modelcheck import NodeLabel

    empty = NodeLabel()
    assert model.accepts(empty, 0, 3)
    updated = model.update(empty, 0, 3, sender=7)
    assert (updated.sn, updated.fd, updated.dist, updated.successor) == \
        (0, 4, 4, 7)
    # Same sn: fd is the running minimum.
    better = model.update(updated, 0, 1, sender=8)
    assert better.fd == 2
    # Fresher sn resets fd upward.
    reset = model.update(better, 1, 3, sender=9)
    assert reset.fd == 4


def test_checker_counts_states():
    checker = ModelChecker(nodes=[0, 1], links=[(0, 1)], dst=0)
    states = checker.run()
    assert checker.states_explored == states
    assert states >= 2
