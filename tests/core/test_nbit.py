"""Tests for the N-bit machinery (Section 2.2).

When a relay cannot build the reverse path (NDC rejects the RREQ-as-
advertisement and it holds no active route to the origin), it sets the N
bit: the RREQ stops being an advertisement for its origin.  The bit rides
the RREP back; the origin then increments its own sequence number and may
probe along the forward path with a unicast, D-bit RREQ so the reverse
path gets built.
"""

from repro.core import LdrConfig, LdrProtocol
from repro.core.messages import LdrRrep, LdrRreq
from repro.core.state import LdrRouteEntry
from repro.mobility import StaticPlacement
from repro.routing.seqnum import LabeledSeq
from tests.conftest import Network


def _inject(protocol, dst, seqno, dist, fd, next_hop, valid=True):
    entry = LdrRouteEntry(dst)
    entry.seqno, entry.dist, entry.fd = seqno, dist, fd
    entry.next_hop, entry.valid = next_hop, valid
    entry.expiry = protocol.sim.now + 1e9
    protocol.table[dst] = entry
    return entry


def test_relay_sets_n_bit_when_reverse_path_blocked():
    net = Network(LdrProtocol, StaticPlacement.line(4, 200.0))
    relay = net.protocols[1]
    # Relay holds *stronger* invariants for the origin 0 than the RREQ
    # advertises (same sn, fd smaller than the advertised distance), and
    # its stored route is invalid -> NDC rejects, no active route -> N.
    _inject(relay, 0, LabeledSeq(0.0, 0), 1, 1, next_hop=0, valid=False)
    rreq = LdrRreq(dst=3, sn_dst=None, rreqid=5, src=0,
                   sn_src=LabeledSeq(0.0, 0), fd=None, dist=1, ttl=5)
    sent = []
    relay.mac.send = lambda p, next_hop=None, on_fail=None: sent.append(p)
    relay.on_packet(rreq, from_id=0)
    net.run(0.1)
    forwarded = [p for p in sent if isinstance(p, LdrRreq)]
    assert forwarded and forwarded[0].n_bit


def test_relay_clears_nothing_when_reverse_path_builds():
    net = Network(LdrProtocol, StaticPlacement.line(4, 200.0))
    relay = net.protocols[1]
    rreq = LdrRreq(dst=3, sn_dst=None, rreqid=5, src=0,
                   sn_src=LabeledSeq(0.0, 1), fd=None, dist=0, ttl=5)
    sent = []
    relay.mac.send = lambda p, next_hop=None, on_fail=None: sent.append(p)
    relay.on_packet(rreq, from_id=0)
    net.run(0.1)  # relayed floods are jittered
    forwarded = [p for p in sent if isinstance(p, LdrRreq)]
    assert forwarded and not forwarded[0].n_bit
    assert relay.table[0].valid


def test_origin_increments_and_probes_on_n_bit_rrep():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0),
                  config=LdrConfig(n_bit_probe=True))
    origin = net.protocols[0]
    _inject(origin, 2, LabeledSeq(0.0, 1), 2, 2, next_hop=1)
    before = origin.own_seq
    rrep = LdrRrep(dst=2, sn_dst=LabeledSeq(0.0, 1), src=0, rreqid=3,
                   dist=1, lifetime=3.0, n_bit=True)
    origin.on_packet(rrep, from_id=1)
    assert origin.own_seq > before
    assert origin.own_seq_increments == 1
    net.run(0.5)
    # The probe went out as a unicast D-bit RREQ (counted as initiated).
    assert net.metrics.control_initiated.get("rreq", 0) >= 1


def test_probe_disabled_by_config():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0),
                  config=LdrConfig(n_bit_probe=False))
    origin = net.protocols[0]
    _inject(origin, 2, LabeledSeq(0.0, 1), 2, 2, next_hop=1)
    rrep = LdrRrep(dst=2, sn_dst=LabeledSeq(0.0, 1), src=0, rreqid=3,
                   dist=1, lifetime=3.0, n_bit=True)
    origin.on_packet(rrep, from_id=1)
    net.run(0.5)
    assert origin.own_seq_increments == 0
    assert net.metrics.control_initiated.get("rreq", 0) == 0


def test_n_bit_rides_the_rrep_chain():
    """An N-flagged solicitation produces an N-flagged reply."""
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0))
    destination = net.protocols[2]
    rreq = LdrRreq(dst=2, sn_dst=None, rreqid=4, src=0,
                   sn_src=LabeledSeq(0.0, 0), fd=None, dist=1, ttl=5,
                   n_bit=True)
    sent = []
    destination.mac.send = lambda p, next_hop=None, on_fail=None: sent.append(p)
    destination.on_packet(rreq, from_id=1)
    replies = [p for p in sent if isinstance(p, LdrRrep)]
    assert replies and replies[0].n_bit
