"""Empirical verification of Theorem 4: LDR is loop-free at every instant.

A LoopChecker audits the union of all routing tables after *every* table
change; any cycle — or violation of the Theorem-2 ordering criterion —
raises immediately.  These tests drive the protocol through randomized
mobile scenarios and adversarial churn; they are the test-suite's teeth.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LdrProtocol
from repro.experiments import ScenarioConfig, build_scenario
from repro.mobility import StaticPlacement
from repro.routing import LoopChecker
from tests.conftest import Network


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_mobile_scenario_never_loops(seed):
    scenario = build_scenario(ScenarioConfig(
        protocol="ldr", num_nodes=14, width=900.0, height=300.0,
        num_flows=4, duration=12.0, pause_time=0.0, max_speed=25.0,
        seed=seed, loop_check=True,
    ))
    scenario.run()  # LoopChecker raises on any violation
    assert scenario.loop_checker.checks_run > 0
    assert scenario.loop_checker.violations == []


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    moves=st.lists(
        st.tuples(st.integers(0, 8), st.floats(0, 800), st.floats(0, 400)),
        min_size=1, max_size=6,
    ),
)
def test_property_adversarial_teleport_churn(seed, moves):
    """Teleport nodes mid-run while traffic flows; tables must stay acyclic
    and ordered throughout."""
    placement = StaticPlacement.grid(3, 3, spacing=200.0)
    net = Network(LdrProtocol, placement, seed=seed)
    LoopChecker(list(net.protocols.values()), check_ordering=True).install()
    rng = random.Random(seed)

    # Continuous traffic between random pairs.
    pairs = [(rng.randrange(9), rng.randrange(9)) for _ in range(4)]
    for src, dst in pairs:
        if src != dst:
            net.send(src, dst)
    net.run(1.0)
    for node, x, y in moves:
        net.placement.move(node, x, y)
        for src, dst in pairs:
            if src != dst:
                net.send(src, dst)
        net.run(1.5)
    net.run(5.0)


def test_repeated_break_and_rediscover_cycle():
    """Break the same path over and over; invariants must hold every time."""
    placement = StaticPlacement.line(6, spacing=200.0)
    net = Network(LdrProtocol, placement, seed=3)
    checker = LoopChecker(list(net.protocols.values()),
                          check_ordering=True).install()
    for round_no in range(6):
        # Restore the line, send, then break a middle link.
        net.placement.move(3, 600.0, 0.0)
        net.send(0, 5)
        net.run(2.0)
        net.placement.move(3, 600.0, 50_000.0)
        net.send(0, 5)
        net.run(3.0)
    assert checker.checks_run > 10
    assert checker.violations == []


def test_simultaneous_discoveries_for_same_destination():
    """Multiple nodes going active for the same destination concurrently
    (Lemmas 4/5) must not interfere or create loops."""
    placement = StaticPlacement.grid(4, 4, spacing=200.0)
    net = Network(LdrProtocol, placement, seed=5)
    LoopChecker(list(net.protocols.values()), check_ordering=True).install()
    dst = 15
    sources = (0, 1, 4, 5, 2, 8)
    for _ in range(3):
        for src in sources:
            net.send(src, dst)
        net.run(2.0)
    net.run(4.0)
    delivered = net.delivered_to(dst)
    # Six synchronized floods collide heavily; with ongoing traffic every
    # source must still get packets through, and most packets arrive.
    assert len(delivered) >= 14
    assert {p.src for p in delivered} == set(sources)


def test_fd_monotone_nonincreasing_for_fixed_sn():
    """Procedure 3: for a fixed sequence number, a node's feasible distance
    never increases over time."""
    placement = StaticPlacement.grid(3, 3, spacing=200.0)
    net = Network(LdrProtocol, placement, seed=9)
    history = {}  # (node, dst) -> list of (sn, fd)

    def snoop(protocol, dst):
        entry = protocol.table.get(dst)
        if entry is not None and entry.seqno is not None:
            history.setdefault((protocol.node_id, dst), []).append(
                (entry.seqno, entry.fd)
            )

    for protocol in net.protocols.values():
        protocol.table_change_hook = snoop

    for src, dst in ((0, 8), (2, 6), (3, 8), (1, 8)):
        net.send(src, dst)
    net.run(2.0)
    net.placement.move(4, 50_000.0, 0.0)
    for src, dst in ((0, 8), (2, 6), (3, 8)):
        net.send(src, dst)
    net.run(5.0)

    assert history
    for samples in history.values():
        for (sn_a, fd_a), (sn_b, fd_b) in zip(samples, samples[1:]):
            assert sn_b >= sn_a, "sequence numbers must be non-decreasing"
            if sn_b == sn_a:
                assert fd_b <= fd_a, "fd must not increase for a fixed sn"
