"""Unit tests for LDR control-message structures."""

from repro.core.messages import INFINITY, LdrRerr, LdrRrep, LdrRreq
from repro.routing.seqnum import LabeledSeq


def test_rreq_defaults_unknown_invariants():
    rreq = LdrRreq(dst=5, sn_dst=None, rreqid=1, src=0,
                   sn_src=LabeledSeq(0, 0), fd=None)
    assert rreq.fd == INFINITY
    assert rreq.answering_fd == INFINITY
    assert not rreq.t_bit and not rreq.n_bit and not rreq.d_bit


def test_rreq_copy_is_deep_enough():
    rreq = LdrRreq(dst=5, sn_dst=LabeledSeq(0, 1), rreqid=1, src=0,
                   sn_src=LabeledSeq(0, 0), fd=4, dist=2, ttl=7,
                   t_bit=True, answering_fd=3)
    clone = rreq.copy()
    clone.dist += 1
    clone.ttl -= 1
    clone.t_bit = False
    assert rreq.dist == 2 and rreq.ttl == 7 and rreq.t_bit
    assert clone.answering_fd == 3
    assert clone.uid != rreq.uid


def test_rreq_is_control_with_kind():
    rreq = LdrRreq(dst=5, sn_dst=None, rreqid=1, src=0,
                   sn_src=LabeledSeq(0, 0), fd=None)
    assert rreq.is_control
    assert rreq.kind == "rreq"


def test_rreq_repr_shows_flags():
    rreq = LdrRreq(dst=5, sn_dst=None, rreqid=1, src=0,
                   sn_src=LabeledSeq(0, 0), fd=None, t_bit=True, d_bit=True)
    assert "T" in repr(rreq) and "D" in repr(rreq) and "N" not in repr(rreq)


def test_rrep_copy_and_fields():
    rrep = LdrRrep(dst=5, sn_dst=LabeledSeq(0, 2), src=0, rreqid=9,
                   dist=3, lifetime=2.5, n_bit=True)
    clone = rrep.copy()
    clone.dist = 99
    assert rrep.dist == 3
    assert clone.n_bit
    assert rrep.kind == "rrep"


def test_rerr_size_scales_with_destinations():
    small = LdrRerr([(1, None)])
    large = LdrRerr([(i, None) for i in range(5)])
    assert large.size_bytes > small.size_bytes
    assert large.copy().unreachable == large.unreachable
