"""Behavioural tests for the LDR protocol engine on small static networks."""

import pytest

from repro.core import LdrConfig, LdrProtocol
from repro.core.messages import LdrRreq
from repro.mobility import StaticPlacement
from repro.routing import LoopChecker
from tests.conftest import Network


def _line(count=4, config=None, seed=1, spacing=200.0):
    net = Network(LdrProtocol, StaticPlacement.line(count, spacing),
                  config=config, seed=seed)
    return net


def test_discovery_and_delivery_on_line():
    net = _line(4)
    net.send(0, 3)
    net.run(5.0)
    assert len(net.delivered_to(3)) == 1
    # The source now has an active route with the right distance labels.
    entry = net.protocols[0].table[3]
    assert entry.valid
    assert entry.dist == 3
    assert entry.fd <= entry.dist
    assert entry.next_hop == 1


def test_delivery_to_direct_neighbor():
    net = _line(2)
    net.send(0, 1)
    net.run(2.0)
    assert len(net.delivered_to(1)) == 1


def test_local_delivery_without_network():
    net = _line(2)
    net.send(0, 0)
    assert len(net.delivered_to(0)) == 1
    assert net.metrics.control_transmissions == {}


def test_packets_buffered_during_discovery_all_delivered():
    net = _line(4)
    for _ in range(5):
        net.send(0, 3)
    net.run(5.0)
    assert len(net.delivered_to(3)) == 5


def test_no_route_to_partitioned_destination():
    placement = StaticPlacement({0: (0, 0), 1: (200, 0), 2: (5000, 0)})
    net = Network(LdrProtocol, placement)
    net.send(0, 2)
    net.run(30.0)
    assert net.delivered_to(2) == []
    assert net.metrics.data_dropped["no_route_found"] == 1
    # Discovery gave up: no active computation left.
    assert net.protocols[0].computations == {}


def test_expanding_ring_widens_ttl():
    """A far destination is found even though the first ring is short."""
    net = _line(7, config=LdrConfig(ttl_start=1, ttl_increment=2,
                                    ttl_threshold=3, net_diameter=10))
    net.send(0, 6)
    net.run(10.0)
    assert len(net.delivered_to(6)) == 1
    # More than one RREQ was initiated (ring expansions).
    assert net.metrics.control_initiated["rreq"] > 1


def test_intermediate_node_with_active_route_replies():
    net = _line(5)
    net.send(0, 4)
    net.run(1.0)
    rreqs_before = net.metrics.control_transmissions["rreq"]
    # Nodes 1..3 hold active routes to 4; when node 0 re-discovers, a
    # downstream node may answer without re-flooding the whole network —
    # provided the invariants allow it.
    net.protocols[0].table[4].invalidate()
    net.send(0, 4)
    net.run(1.0)
    assert len(net.delivered_to(4)) == 2
    rreqs_after = net.metrics.control_transmissions["rreq"]
    # The second discovery should cost at most a couple of transmissions.
    assert rreqs_after - rreqs_before <= 4


def test_sequence_numbers_only_incremented_by_destination():
    net = _line(5)
    net.send(0, 4)
    net.run(5.0)
    for node_id, protocol in net.protocols.items():
        if node_id != 4:
            assert protocol.own_seq_increments == 0


def test_reverse_route_built_by_rreq():
    net = _line(4)
    net.send(0, 3)
    net.run(5.0)
    # Relay 1 learned a route back to the RREQ origin 0.
    entry = net.protocols[1].table.get(0)
    assert entry is not None
    assert entry.next_hop == 0
    assert entry.dist == 1


def test_route_error_on_broken_link_invalidates_upstream():
    net = _line(4)
    net.send(0, 3)
    net.run(1.0)
    assert net.protocols[0].table[3].valid
    # Break the link 2-3 by moving node 3 far away, then send again while
    # the route is still within its lifetime so data actually flows.
    net.placement.move(3, 50000.0, 0.0)
    net.send(0, 3)
    net.run(10.0)
    # Node 2 detected the break via MAC feedback and invalidated.
    entry = net.protocols[2].table[3]
    assert not entry.valid
    assert net.metrics.mac_give_ups >= 1


def test_feasible_distance_never_exceeds_distance():
    net = _line(6)
    net.send(0, 5)
    net.send(2, 5)
    net.run(5.0)
    for protocol in net.protocols.values():
        for entry in protocol.table.values():
            assert entry.fd <= entry.dist


def test_data_hop_limit_drops_runaway_packets():
    # hop limit 1 allows one relay; a 3-hop path must be dropped en route.
    net = _line(4, config=LdrConfig(data_hop_limit=1))
    net.send(0, 3)
    net.run(5.0)
    assert net.delivered_to(3) == []
    assert net.metrics.data_dropped["hop_limit"] >= 1


def test_loop_checker_clean_during_churn():
    placement = StaticPlacement.grid(3, 3, spacing=200.0)
    net = Network(LdrProtocol, placement)
    checker = LoopChecker(list(net.protocols.values()),
                          check_ordering=True).install()
    net.send(0, 8)
    net.run(3.0)
    net.placement.move(4, 10000.0, 0.0)  # knock out the grid centre
    net.send(0, 8)
    net.send(3, 8)
    net.run(10.0)
    assert checker.checks_run > 0
    assert checker.violations == []


def test_request_as_error_invalidates_route():
    """A RREQ for D arriving from our *next hop toward D* signals a break."""
    net = _line(4, config=LdrConfig(request_as_error=True))
    net.send(0, 3)
    net.run(5.0)
    protocol = net.protocols[0]
    assert protocol.table[3].valid
    entry = protocol.table[3]
    # Synthesize a RREQ from node 1 (our next hop to 3) soliciting 3.
    rreq = LdrRreq(dst=3, sn_dst=entry.seqno, rreqid=99, src=1,
                   sn_src=net.protocols[1].own_seq, fd=entry.fd, ttl=3)
    protocol.on_packet(rreq, from_id=1)
    assert not protocol.table[3].valid


def test_request_as_error_disabled():
    net = _line(4, config=LdrConfig(request_as_error=False))
    net.send(0, 3)
    net.run(5.0)
    protocol = net.protocols[0]
    entry = protocol.table[3]
    rreq = LdrRreq(dst=3, sn_dst=entry.seqno, rreqid=99, src=1,
                   sn_src=net.protocols[1].own_seq, fd=entry.fd, ttl=3)
    protocol.on_packet(rreq, from_id=1)
    assert protocol.table[3].valid


def test_reduced_distance_answering_fd():
    config = LdrConfig(reduced_distance_factor=0.8)
    assert config.answering_distance(10) == 8
    assert config.answering_distance(1) == 1  # floor of 1
    assert config.answering_distance(float("inf")) == float("inf")
    off = LdrConfig(reduced_distance_factor=None)
    assert off.answering_distance(10) == 10


def test_min_reply_lifetime_blocks_stale_answer():
    """A node whose route is about to expire must relay, not reply."""
    net = _line(4, config=LdrConfig(min_reply_lifetime=100.0))
    net.send(0, 3)
    net.run(5.0)
    before = net.metrics.control_initiated.get("rrep", 0)
    # With an absurd min lifetime, only the destination can ever answer.
    net.protocols[0].table[3].invalidate()
    net.send(0, 3)
    net.run(5.0)
    assert len(net.delivered_to(3)) == 2


def test_successor_and_route_metric_api():
    net = _line(3)
    net.send(0, 2)
    net.run(5.0)
    protocol = net.protocols[0]
    assert protocol.successor(2) == 1
    sn, fd, dist = protocol.route_metric(2)
    assert dist == 2
    assert fd <= dist
    # Self metrics: distance zero with our own label.
    own_sn, own_fd, own_dist = protocol.route_metric(0)
    assert (own_fd, own_dist) == (0, 0)
    assert protocol.successor(0) is None


def test_rerr_propagates_upstream():
    net = _line(5)
    net.send(0, 4)
    net.run(1.0)
    assert net.protocols[1].table[4].valid
    # Break the last link; node 3 will fail, RERR should reach node 1.
    net.placement.move(4, 90000.0, 0.0)
    net.send(0, 4)
    net.run(10.0)
    assert not net.protocols[1].table[4].valid


def test_config_without_override():
    config = LdrConfig()
    clone = config.without(ttl_start=9)
    assert clone.ttl_start == 9
    assert config.ttl_start == 2
    with pytest.raises(AttributeError):
        config.without(not_a_field=1)
