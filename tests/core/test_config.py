"""Unit tests for LdrConfig helpers."""

import pytest

from repro.core import LdrConfig


def test_ring_timeout_scales_with_ttl():
    config = LdrConfig(node_traversal_time=0.04)
    assert config.ring_timeout(35) == pytest.approx(2.8)
    assert config.ring_timeout(1) == 0.2  # floored


def test_answering_distance_truncates():
    config = LdrConfig(reduced_distance_factor=0.8)
    assert config.answering_distance(5) == 4
    assert config.answering_distance(4) == 3
    assert config.answering_distance(2) == 1
    assert config.answering_distance(1) == 1


def test_answering_distance_infinite_passthrough():
    config = LdrConfig()
    assert config.answering_distance(float("inf")) == float("inf")


def test_without_clones_deeply_enough():
    config = LdrConfig()
    clone = config.without(multiple_rreps=False, ttl_start=5)
    assert not clone.multiple_rreps and clone.ttl_start == 5
    assert config.multiple_rreps and config.ttl_start == 2


def test_defaults_match_paper_parameters():
    config = LdrConfig()
    # AODV-draft timers the paper's messaging structure inherits.
    assert config.active_route_timeout == 3.0
    assert config.min_reply_lifetime == pytest.approx(
        config.active_route_timeout / 3.0)
    assert config.reduced_distance_factor == 0.8
    # All five Section-4 optimizations on by default.
    assert config.multiple_rreps
    assert config.request_as_error
    assert config.optimal_ttl
    assert config.n_bit_probe
