"""Tests for LDR's computation-engagement semantics (Procedure 2 and
Theorem 3: a node enters each computation at most once, so the flood's
propagation graph is a tree)."""

from repro.core import LdrConfig, LdrProtocol
from repro.core.messages import LdrRreq
from repro.mobility import StaticPlacement
from repro.routing.seqnum import LabeledSeq
from tests.conftest import Network


def _rreq(dst, src, rreqid, ttl=5, **kw):
    return LdrRreq(dst=dst, sn_dst=None, rreqid=rreqid, src=src,
                   sn_src=LabeledSeq(0, 0), fd=None, ttl=ttl, **kw)


def test_duplicate_rreq_silently_ignored():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0))
    protocol = net.protocols[1]
    protocol.on_packet(_rreq(dst=2, src=0, rreqid=7), from_id=0)
    tx_after_first = net.metrics.control_transmissions.get("rreq", 0)
    protocol.on_packet(_rreq(dst=2, src=0, rreqid=7), from_id=0)
    protocol.on_packet(_rreq(dst=2, src=0, rreqid=7), from_id=2)
    net.run(1.0)
    # No additional relays for the same computation.
    assert net.metrics.control_transmissions.get("rreq", 0) <= tx_after_first + 1


def test_distinct_rreqids_are_distinct_computations():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0))
    protocol = net.protocols[1]
    protocol.on_packet(_rreq(dst=2, src=0, rreqid=7), from_id=0)
    protocol.on_packet(_rreq(dst=2, src=0, rreqid=8), from_id=0)
    assert (0, 7) in protocol.rreq_cache
    assert (0, 8) in protocol.rreq_cache


def test_own_rreq_ignored():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0))
    protocol = net.protocols[0]
    protocol.on_packet(_rreq(dst=2, src=0, rreqid=7), from_id=1)
    assert (0, 7) not in protocol.rreq_cache


def test_reverse_path_recorded_toward_first_sender():
    net = Network(LdrProtocol, StaticPlacement.line(4, 200.0))
    protocol = net.protocols[1]
    protocol.on_packet(_rreq(dst=3, src=0, rreqid=7), from_id=0)
    cache = protocol.rreq_cache[(0, 7)]
    assert cache.last_hop == 0


def test_unicast_probe_forwarded_once():
    net = Network(LdrProtocol, StaticPlacement.line(4, 200.0))
    # Give node 1 an active route to 3 so it can forward the probe.
    net.send(1, 3)
    net.run(1.0)
    protocol = net.protocols[1]
    probe = _rreq(dst=3, src=0, rreqid=42, ttl=6, d_bit=True)
    protocol.on_packet(probe, from_id=0)
    assert protocol.rreq_cache[(0, 42)].forwarded_unicast
    tx = net.metrics.control_transmissions.get("rreq", 0)
    protocol.on_packet(_rreq(dst=3, src=0, rreqid=42, ttl=6, d_bit=True),
                       from_id=0)
    net.run(1.0)
    # A second copy of the probe does not fan out again from node 1;
    # allow the in-flight first forward to land.
    assert net.metrics.control_transmissions.get("rreq", 0) <= tx + 2


def test_ttl_boundary_stops_relay():
    net = Network(LdrProtocol, StaticPlacement.line(4, 200.0))
    protocol = net.protocols[1]
    before = net.metrics.control_transmissions.get("rreq", 0)
    protocol.on_packet(_rreq(dst=3, src=0, rreqid=9, ttl=1), from_id=0)
    net.run(1.0)
    assert net.metrics.control_transmissions.get("rreq", 0) == before


def test_engagement_cache_purged_when_large():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0),
                  config=LdrConfig(engagement_timeout=0.5))
    protocol = net.protocols[1]
    for rreqid in range(300):
        protocol.on_packet(_rreq(dst=2, src=0, rreqid=rreqid, ttl=1),
                           from_id=0)
    net.run(2.0)
    # Trigger the lazy purge with one more arrival after expiry.
    protocol.on_packet(_rreq(dst=2, src=0, rreqid=999), from_id=0)
    assert len(protocol.rreq_cache) < 300
