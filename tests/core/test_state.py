"""Unit tests for LDR per-node state objects."""

from repro.core.messages import INFINITY
from repro.core.state import LdrRouteEntry, RreqCacheEntry
from repro.routing.seqnum import LabeledSeq


def test_new_entry_has_no_information():
    entry = LdrRouteEntry(7)
    assert entry.seqno is None
    assert entry.dist == INFINITY
    assert entry.fd == INFINITY
    assert not entry.valid
    assert not entry.is_active(0.0)


def test_entry_active_within_lifetime():
    entry = LdrRouteEntry(7)
    entry.valid = True
    entry.expiry = 10.0
    assert entry.is_active(5.0)
    assert not entry.is_active(10.0)
    assert entry.remaining_lifetime(4.0) == 6.0


def test_invalidate_keeps_labels():
    entry = LdrRouteEntry(7)
    entry.seqno = LabeledSeq(0, 3)
    entry.dist = 4
    entry.fd = 2
    entry.valid = True
    entry.invalidate()
    assert not entry.valid
    assert entry.seqno == LabeledSeq(0, 3)
    assert entry.fd == 2
    assert entry.dist == 4


def test_remaining_lifetime_zero_when_invalid():
    entry = LdrRouteEntry(7)
    entry.expiry = 100.0
    assert entry.remaining_lifetime(0.0) == 0.0


def test_cache_entry_first_reply_is_stronger():
    cache = RreqCacheEntry(1, 9, last_hop=2, now=0.0, timeout=5.0)
    assert cache.stronger_than_forwarded(LabeledSeq(0, 1), 4)


def test_cache_entry_multiple_rreps_rule():
    cache = RreqCacheEntry(1, 9, last_hop=2, now=0.0, timeout=5.0)
    cache.record_forwarded(LabeledSeq(0, 1), 4)
    # Same sn, shorter distance: stronger.
    assert cache.stronger_than_forwarded(LabeledSeq(0, 1), 3)
    # Same sn, same or longer distance: not stronger.
    assert not cache.stronger_than_forwarded(LabeledSeq(0, 1), 4)
    assert not cache.stronger_than_forwarded(LabeledSeq(0, 1), 5)
    # Fresher sn: stronger regardless of distance.
    assert cache.stronger_than_forwarded(LabeledSeq(0, 2), 99)
    # Older sn: never stronger.
    assert not cache.stronger_than_forwarded(LabeledSeq(0, 0), 0)


def test_cache_entry_expiry_and_fields():
    cache = RreqCacheEntry(3, 11, last_hop=5, now=2.0, timeout=6.0)
    assert cache.origin == 3
    assert cache.rreqid == 11
    assert cache.last_hop == 5
    assert cache.expiry == 8.0
    assert not cache.forwarded_unicast
