"""Expanding-ring search behaviour under LDR (Procedure 1 details)."""

from repro.core import LdrConfig, LdrProtocol
from repro.mobility import StaticPlacement
from tests.conftest import Network


def test_first_ring_does_not_flood_whole_network():
    """With a near destination, the initial small TTL confines the flood."""
    net = Network(LdrProtocol, StaticPlacement.line(8, 200.0),
                  config=LdrConfig(ttl_start=2, optimal_ttl=False))
    net.send(0, 2)  # destination 2 hops away
    net.run(3.0)
    assert len(net.delivered_to(2)) == 1
    # Nodes beyond the ring never relayed the RREQ: they stay unengaged.
    assert all((0, rid) not in net.protocols[6].rreq_cache
               for rid in range(1, 5))


def test_each_retry_uses_fresh_rreqid():
    placement = StaticPlacement({0: (0, 0), 1: (200, 0), 2: (9000, 0)})
    net = Network(LdrProtocol, placement,
                  config=LdrConfig(ttl_start=1, rreq_retries=2))
    net.send(0, 2)
    net.run(10.0)
    # Node 1 became engaged once per attempt (distinct rreqids).
    engagements = [key for key in net.protocols[1].rreq_cache if key[0] == 0]
    assert len(engagements) == 3  # initial + 2 retries


def test_discovery_timer_cleared_on_success():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0))
    net.send(0, 2)
    net.run(3.0)
    protocol = net.protocols[0]
    assert protocol.computations == {}
    # No stray timers: draining the queue fires nothing new for dst 2.
    rreqs = net.metrics.control_initiated.get("rreq", 0)
    net.run(10.0)
    assert net.metrics.control_initiated.get("rreq", 0) == rreqs


def test_concurrent_discoveries_to_different_destinations():
    net = Network(LdrProtocol, StaticPlacement.grid(3, 3, 200.0))
    net.send(0, 8)
    net.send(0, 6)
    net.send(0, 2)
    assert len(net.protocols[0].computations) == 3
    net.run(5.0)
    assert len(net.delivered_to(8)) == 1
    assert len(net.delivered_to(6)) == 1
    assert len(net.delivered_to(2)) == 1
    assert net.protocols[0].computations == {}


def test_duplicate_send_does_not_start_second_computation():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0))
    net.send(0, 2)
    comp = net.protocols[0].computations[2]
    net.send(0, 2)
    assert net.protocols[0].computations[2] is comp
    net.run(3.0)
    assert len(net.delivered_to(2)) == 2  # both buffered packets flushed
