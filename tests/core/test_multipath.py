"""Tests for the LDR multipath extension (loop-free alternates).

Off by default (the PODC'03 protocol is single-path); when enabled, any
neighbor whose advertisement satisfied NDC is retained, and link breaks
fail over to the best alternate without rediscovery — still loop-free,
because alternates are only used while their advertised distance stays
below the feasible distance (Theorem 1 applies verbatim).
"""

from repro.core import LdrConfig, LdrProtocol
from repro.core.messages import LdrRrep
from repro.mobility import StaticPlacement
from repro.routing import LoopChecker
from repro.routing.seqnum import LabeledSeq
from tests.conftest import Network

SN = LabeledSeq(0.0, 1)


def _diamond(multipath=True):
    """0 -(1,2)- 3: two disjoint two-hop paths."""
    placement = StaticPlacement({0: (0, 0), 1: (200, 0), 2: (0, 200),
                                 3: (200, 200)})
    return Network(LdrProtocol, placement,
                   config=LdrConfig(multipath=multipath))


def test_alternate_recorded_from_stability_rejected_offer():
    net = _diamond()
    protocol = net.protocols[0]
    net.send(0, 3)
    net.run(2.0)
    entry = protocol.table[3]
    primary = entry.next_hop
    other = 2 if primary == 1 else 1
    # Feed a same-number, same-distance offer from the other branch: the
    # stability rule keeps the primary but must remember the alternate.
    protocol.on_packet(LdrRrep(dst=3, sn_dst=entry.seqno, src=0, rreqid=77,
                               dist=1, lifetime=10.0), from_id=other)
    assert entry.next_hop == primary
    assert other in entry.alternates


def test_failover_switches_without_rediscovery():
    net = _diamond()
    protocol = net.protocols[0]
    net.send(0, 3)
    net.run(2.0)
    entry = protocol.table[3]
    primary = entry.next_hop
    other = 2 if primary == 1 else 1
    protocol.on_packet(LdrRrep(dst=3, sn_dst=entry.seqno, src=0, rreqid=77,
                               dist=1, lifetime=10.0), from_id=other)
    rreqs_before = net.metrics.control_initiated.get("rreq", 0)
    # Simulate MAC feedback: the primary link died.
    broken = protocol._invalidate_via(primary)
    assert broken == []  # nothing invalidated: the alternate took over
    assert entry.valid
    assert entry.next_hop == other
    assert net.metrics.control_initiated.get("rreq", 0) == rreqs_before


def test_failover_respects_feasibility():
    """An alternate whose distance reaches fd is discarded, not used."""
    net = _diamond()
    protocol = net.protocols[0]
    net.send(0, 3)
    net.run(2.0)
    entry = protocol.table[3]
    primary = entry.next_hop
    other = 2 if primary == 1 else 1
    # Plant an infeasible alternate (advertised distance >= fd).
    entry.alternates[other] = (entry.seqno, entry.fd)
    broken = protocol._invalidate_via(primary)
    assert broken == [3]
    assert not entry.valid


def test_alternates_cleared_on_sequence_reset():
    net = _diamond()
    protocol = net.protocols[0]
    net.send(0, 3)
    net.run(2.0)
    entry = protocol.table[3]
    primary = entry.next_hop
    other = 2 if primary == 1 else 1
    protocol.on_packet(LdrRrep(dst=3, sn_dst=entry.seqno, src=0, rreqid=77,
                               dist=1, lifetime=10.0), from_id=other)
    assert entry.alternates
    fresher = entry.seqno.incremented(1.0)
    protocol.on_packet(LdrRrep(dst=3, sn_dst=fresher, src=0, rreqid=78,
                               dist=1, lifetime=10.0), from_id=primary)
    # Old-number alternates are void after the reset.
    assert all(sn == fresher for (sn, _) in entry.alternates.values())


def test_singlepath_default_keeps_no_alternates():
    net = _diamond(multipath=False)
    protocol = net.protocols[0]
    net.send(0, 3)
    net.run(2.0)
    entry = protocol.table[3]
    other = 2 if entry.next_hop == 1 else 1
    protocol.on_packet(LdrRrep(dst=3, sn_dst=entry.seqno, src=0, rreqid=77,
                               dist=1, lifetime=10.0), from_id=other)
    assert entry.alternates == {}


def test_multipath_stays_loop_free_under_churn():
    placement = StaticPlacement.grid(3, 3, 200.0)
    net = Network(LdrProtocol, placement,
                  config=LdrConfig(multipath=True), seed=12)
    checker = LoopChecker(list(net.protocols.values()),
                          check_ordering=True).install()
    for src, dst in ((0, 8), (2, 6), (6, 2), (8, 0)):
        net.send(src, dst)
    net.run(3.0)
    net.placement.move(4, 50_000.0, 0.0)
    for src, dst in ((0, 8), (2, 6)):
        net.send(src, dst)
    net.run(6.0)
    assert checker.checks_run > 0
    assert checker.violations == []


def test_multipath_improves_or_matches_delivery_under_churn():
    from repro import ScenarioConfig, run_scenario

    base = dict(num_nodes=30, width=1200.0, height=300.0, num_flows=5,
                duration=40.0, pause_time=0.0, seed=19)
    single = run_scenario(ScenarioConfig(protocol="ldr", **base))
    multi = run_scenario(ScenarioConfig(
        protocol="ldr", protocol_config=LdrConfig(multipath=True), **base))
    assert multi.delivery_ratio >= single.delivery_ratio - 0.03
