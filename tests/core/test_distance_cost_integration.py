"""Integration of the DistanceCost model with a live LDR network."""

from repro.core import LdrConfig, LdrProtocol
from repro.mobility import StaticPlacement
from repro.routing.costs import DistanceCost
from tests.conftest import Network


def test_distance_cost_bound_to_simulation_clock():
    placement = StaticPlacement.line(3, 250.0)  # near-range links
    cost = DistanceCost(placement, transmission_range=275.0, extra=3)
    net = Network(LdrProtocol, placement,
                  config=LdrConfig(link_cost=cost))
    net.send(0, 2)
    net.run(3.0)
    assert len(net.delivered_to(2)) == 1
    # 250 m of 275 m range: frac ~0.83 -> cost 1 + round(3 * 0.83) ≈ 3..4
    entry = net.protocols[0].table[2]
    assert entry.dist >= 6  # two expensive links
    assert entry.fd <= entry.dist


def test_distance_cost_short_links_stay_cheap():
    # 50 m spacing: 0 and 2 are 100 m apart, i.e. *direct* neighbors with
    # a near-unit cost link ((100/275)^2 -> 1 + round(0.4) = 1).
    placement = StaticPlacement.line(3, 50.0)
    cost = DistanceCost(placement, transmission_range=275.0, extra=3)
    net = Network(LdrProtocol, placement,
                  config=LdrConfig(link_cost=cost))
    net.send(0, 2)
    net.run(3.0)
    entry = net.protocols[0].table[2]
    assert entry.next_hop == 2
    assert entry.dist == 1


def test_clock_binding_updates_costs_over_time():
    """The model reads positions at the *current* simulation time."""
    placement = StaticPlacement({0: (0, 0), 1: (50, 0)})
    cost = DistanceCost(placement, transmission_range=275.0, extra=3)
    cost.bind_clock(lambda: 0.0)
    cheap = cost(0, 1)
    placement.move(1, 270.0, 0.0)
    expensive = cost(0, 1)
    assert expensive > cheap
