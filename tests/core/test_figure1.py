"""Replication of the paper's worked example (Figure 1, Section 2.3).

Destination T in a six-node network.  Phase one exercises NDC at node E as
the three RREPs from nodes B, C, D arrive in the narrative's order; phase
two exercises the T-bit path reset: E re-discovers with feasible distance
2, B and C must forward (and set T), D satisfies SDC without the T bit and
unicasts the RREQ to T, which increments its sequence number; the RREP
then resets feasible distances along the reverse path E<-B<-C<-D<-T.
"""

from repro.core import LdrConfig, LdrProtocol
from repro.core.messages import LdrRrep
from repro.core.state import LdrRouteEntry
from repro.mobility import StaticPlacement
from repro.routing.seqnum import LabeledSeq
from tests.conftest import Network

E, B, C, D, T = 0, 1, 2, 3, 4
SN1 = LabeledSeq(0.0, 1)


def _inject(protocol, dst, seqno, dist, fd, next_hop, lifetime=1e9):
    entry = LdrRouteEntry(dst)
    entry.seqno = seqno
    entry.dist = dist
    entry.fd = fd
    entry.next_hop = next_hop
    entry.valid = True
    entry.expiry = protocol.sim.now + lifetime
    protocol.table[dst] = entry
    return entry


def test_phase1_ndc_reply_sequence_at_e():
    """C replies first (dist 3, fd 2), then B (dist 4), then D (dist 1)."""
    net = Network(LdrProtocol, StaticPlacement.star(3, radius=200.0))
    e = net.protocols[0]
    rreqid = 7

    # C's RREP first: measured distance 3 -> E stores 4/4.
    e.on_packet(LdrRrep(dst=T, sn_dst=SN1, src=E, rreqid=rreqid,
                        dist=3, lifetime=30.0), from_id=1)
    entry = e.table[T]
    assert (entry.dist, entry.fd) == (4, 4)
    assert entry.next_hop == 1

    # B's RREP with start distance 4: not shorter than E's feasible
    # distance, so E ignores it.
    e.on_packet(LdrRrep(dst=T, sn_dst=SN1, src=E, rreqid=rreqid,
                        dist=4, lifetime=30.0), from_id=2)
    entry = e.table[T]
    assert (entry.dist, entry.fd) == (4, 4)
    assert entry.next_hop == 1

    # D's RREP with measured distance 1: E updates both to 2, successor D.
    e.on_packet(LdrRrep(dst=T, sn_dst=SN1, src=E, rreqid=rreqid,
                        dist=1, lifetime=30.0), from_id=3)
    entry = e.table[T]
    assert (entry.dist, entry.fd) == (2, 2)
    assert entry.next_hop == 3


def test_phase2_t_bit_reset_through_destination():
    """After links e2/e3 fail, E's RREQ (fd 2) forces a path reset via T."""
    placement = StaticPlacement.line(5, spacing=200.0)  # E-B-C-D-T
    config = LdrConfig(reduced_distance_factor=None)  # follow the paper text
    net = Network(LdrProtocol, placement, config=config)

    # Labels from Figure 1 (dist/fd): B=4/4, C=3/2, D=1/1, all at sn 1.
    _inject(net.protocols[B], T, SN1, 4, 4, next_hop=C)
    _inject(net.protocols[C], T, SN1, 3, 2, next_hop=D)
    _inject(net.protocols[D], T, SN1, 1, 1, next_hop=T)
    # E's route broke: labels 2/2 retained but invalid.
    broken = _inject(net.protocols[E], T, SN1, 2, 2, next_hop=D)
    broken.invalidate()
    # T owns sequence number 1.
    net.protocols[T].own_seq = SN1

    net.send(E, T)
    net.run(5.0)

    # The destination performed exactly one reset.
    assert net.protocols[T].own_seq_increments == 1
    sn2 = net.protocols[T].own_seq
    assert sn2 > SN1

    # D relayed the reset RREP: distance 1, feasible distance reset to 1.
    d_entry = net.protocols[D].table[T]
    assert (d_entry.seqno, d_entry.dist, d_entry.fd) == (sn2, 1, 1)
    # C: measured distance 2, feasible distance (still) 2.
    c_entry = net.protocols[C].table[T]
    assert (c_entry.seqno, c_entry.dist, c_entry.fd) == (sn2, 2, 2)
    # B: both reset to 3.
    b_entry = net.protocols[B].table[T]
    assert (b_entry.seqno, b_entry.dist, b_entry.fd) == (sn2, 3, 3)
    # E: measured distance 4, feasible distance reset to 4.
    e_entry = net.protocols[E].table[T]
    assert (e_entry.seqno, e_entry.dist, e_entry.fd) == (sn2, 4, 4)
    assert e_entry.next_hop == B

    # And the buffered data packet arrived at T over the reset path.
    assert len(net.delivered_to(T)) == 1


def test_phase2_without_t_bit_d_replies_directly():
    """Control: if E's feasible distance were loose (fd 5), D could reply
    without any reset and T's number would stay untouched."""
    placement = StaticPlacement.line(5, spacing=200.0)
    config = LdrConfig(reduced_distance_factor=None)
    net = Network(LdrProtocol, placement, config=config)
    _inject(net.protocols[B], T, SN1, 4, 4, next_hop=C)
    _inject(net.protocols[C], T, SN1, 3, 2, next_hop=D)
    _inject(net.protocols[D], T, SN1, 1, 1, next_hop=T)
    broken = _inject(net.protocols[E], T, SN1, 5, 5, next_hop=D)
    broken.invalidate()
    net.protocols[T].own_seq = SN1

    net.send(E, T)
    net.run(5.0)

    assert net.protocols[T].own_seq_increments == 0
    assert len(net.delivered_to(T)) == 1
    # E accepted an advertisement under the same sequence number.
    assert net.protocols[E].table[T].seqno == SN1
