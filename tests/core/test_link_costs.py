"""Weighted link costs in LDR (the paper's 'positive symmetric costs').

Hop count is the unit-cost special case; these tests exercise LDR with
explicit per-link costs and verify routing prefers cheap multi-hop paths,
and that the loop-freedom invariants hold unchanged.
"""

import pytest

from repro.core import LdrConfig, LdrProtocol
from repro.mobility import StaticPlacement
from repro.routing import LoopChecker
from repro.routing.costs import DistanceCost, HopCost, TableCost
from tests.conftest import Network


def test_hop_cost_is_unit():
    cost = HopCost()
    assert cost(0, 1) == 1
    assert cost(5, 9) == 1


def test_table_cost_symmetric_with_default():
    cost = TableCost({(0, 1): 5, (1, 2): 2})
    assert cost(0, 1) == 5
    assert cost(1, 0) == 5
    assert cost(1, 2) == 2
    assert cost(0, 9) == 1  # default


def test_table_cost_rejects_nonpositive():
    with pytest.raises(ValueError):
        TableCost({(0, 1): 0})


def test_distance_cost_grows_with_separation():
    placement = StaticPlacement({0: (0, 0), 1: (50, 0), 2: (270, 0)})
    cost = DistanceCost(placement, transmission_range=275.0, extra=3)
    assert cost(0, 1) < cost(0, 2)
    assert cost(0, 1) >= 1


def test_ldr_adopts_cheaper_advertisement_under_ndc():
    """Triangle: the direct link 0-2 costs 10, the 0-1-2 detour costs 2.

    Discovery finds the direct (expensive) route first — replies follow
    the flood tree, which is cost-blind.  A subsequent advertisement from
    node 1 (distance 1, link cost 1 -> total 2 < fd 10) is then accepted
    by NDC, moving the successor onto the cheap path.
    """
    from repro.core.messages import LdrRrep

    placement = StaticPlacement({0: (0, 0), 1: (130, 0), 2: (260, 0)})
    cost = TableCost({(0, 2): 10, (0, 1): 1, (1, 2): 1})
    net = Network(LdrProtocol, placement,
                  config=LdrConfig(link_cost=cost))
    net.send(0, 2)
    net.run(3.0)
    assert len(net.delivered_to(2)) == 1
    protocol = net.protocols[0]
    entry = protocol.table[2]
    assert entry.next_hop == 2
    assert entry.dist == 10  # the direct link's weight, not hop count

    # Node 1 now advertises its (cheap) route: NDC accepts 1 + 1 < fd 10.
    protocol.on_packet(
        LdrRrep(dst=2, sn_dst=entry.seqno, src=0, rreqid=99, dist=1,
                lifetime=10.0), from_id=1)
    entry = protocol.table[2]
    assert entry.next_hop == 1
    assert entry.dist == 2
    assert entry.fd == 2


def test_weighted_distances_accumulate_in_labels():
    placement = StaticPlacement.line(4, 200.0)
    cost = TableCost({(0, 1): 2, (1, 2): 3, (2, 3): 4})
    net = Network(LdrProtocol, placement,
                  config=LdrConfig(link_cost=cost))
    net.send(0, 3)
    net.run(3.0)
    assert net.protocols[0].table[3].dist == 9
    assert net.protocols[1].table[3].dist == 7
    assert net.protocols[2].table[3].dist == 4


def test_loop_freedom_holds_with_weighted_costs():
    placement = StaticPlacement.grid(3, 3, 200.0)
    cost = TableCost({(0, 1): 4, (1, 2): 1, (3, 4): 7, (4, 5): 2,
                      (0, 3): 2, (1, 4): 3}, default=2)
    net = Network(LdrProtocol, placement,
                  config=LdrConfig(link_cost=cost), seed=8)
    checker = LoopChecker(list(net.protocols.values()),
                          check_ordering=True).install()
    for src, dst in ((0, 8), (2, 6), (6, 2)):
        net.send(src, dst)
    net.run(3.0)
    net.placement.move(4, 50_000.0, 0.0)
    net.send(0, 8)
    net.run(6.0)
    assert checker.checks_run > 0
    assert checker.violations == []


def test_unit_cost_default_matches_hop_count():
    net = Network(LdrProtocol, StaticPlacement.line(4, 200.0),
                  config=LdrConfig())
    net.send(0, 3)
    net.run(3.0)
    assert net.protocols[0].table[3].dist == 3
