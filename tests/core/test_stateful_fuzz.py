"""Stateful fuzzing of LDR with hypothesis.

A RuleBasedStateMachine interleaves data sends, node teleports, node
isolation and time advancement in arbitrary orders, with the LoopChecker
armed on every routing-table change.  Invariants checked continuously:

* no routing loops and no feasible-distance ordering violations
  (LoopChecker raises inside the rules themselves);
* ``fd <= dist`` for every valid entry;
* a node is never both active and engaged in its own computation;
* buffered packets never exceed the configured capacity.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.core import LdrProtocol
from repro.core.messages import INFINITY
from repro.mobility import StaticPlacement
from repro.routing import LoopChecker
from tests.conftest import Network

NODES = 9  # 3x3 grid


class LdrMachine(RuleBasedStateMachine):

    @initialize(seed=st.integers(0, 2 ** 16))
    def setup(self, seed):
        self.net = Network(LdrProtocol,
                           StaticPlacement.grid(3, 3, spacing=200.0),
                           seed=seed)
        self.checker = LoopChecker(
            list(self.net.protocols.values()), check_ordering=True
        ).install()

    @rule(src=st.integers(0, NODES - 1), dst=st.integers(0, NODES - 1))
    def send(self, src, dst):
        if src != dst:
            self.net.send(src, dst)

    @rule(node=st.integers(0, NODES - 1),
          x=st.floats(0, 600), y=st.floats(0, 600))
    def teleport(self, node, x, y):
        self.net.placement.move(node, x, y)

    @rule(node=st.integers(0, NODES - 1))
    def isolate(self, node):
        self.net.placement.move(node, 50_000.0, 50_000.0)

    @rule(seconds=st.floats(0.05, 2.0))
    def advance(self, seconds):
        self.net.run(seconds)

    @invariant()
    def fd_never_exceeds_dist(self):
        if not hasattr(self, "net"):
            return
        for protocol in self.net.protocols.values():
            for entry in protocol.table.values():
                if entry.seqno is not None:
                    assert entry.fd <= entry.dist

    @invariant()
    def node_not_engaged_in_own_computation(self):
        if not hasattr(self, "net"):
            return
        for protocol in self.net.protocols.values():
            for (origin, _), _cache in protocol.rreq_cache.items():
                assert origin != protocol.node_id

    @invariant()
    def computations_reference_real_destinations(self):
        if not hasattr(self, "net"):
            return
        for protocol in self.net.protocols.values():
            for dst, comp in protocol.computations.items():
                assert comp.dst == dst
                assert dst != protocol.node_id

    @invariant()
    def own_entry_never_in_table(self):
        if not hasattr(self, "net"):
            return
        for protocol in self.net.protocols.values():
            assert protocol.node_id not in protocol.table

    def teardown(self):
        if hasattr(self, "net"):
            # Drain in-flight events; the checker audits every change.
            self.net.run(5.0)


TestLdrStateful = LdrMachine.TestCase
TestLdrStateful.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None,
)


def test_infinity_constant_sanity():
    assert INFINITY == float("inf")
