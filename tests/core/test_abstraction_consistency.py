"""Cross-validation: the model checker's abstract update rule must agree
with the real protocol's Procedure-3 implementation.

If the abstraction drifted from the code, the exhaustive verification in
``repro.core.modelcheck`` would be verifying the wrong protocol.  This
property test feeds identical advertisement sequences to both and compares
the resulting (sn, fd, dist) labels.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LdrProtocol
from repro.core.modelcheck import LdrModel, NodeLabel
from repro.mobility import StaticPlacement
from repro.routing.seqnum import LabeledSeq
from tests.conftest import Network

advertisements = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 6)),  # (sn counter, dist)
    min_size=1, max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(advertisements)
def test_abstract_update_matches_protocol(ads):
    # Abstract side.
    model = LdrModel()
    label = NodeLabel()
    for sn, dist in ads:
        if model.accepts(label, sn, dist):
            label = model.update(label, sn, dist, sender=1)

    # Concrete side: the same advertisements as RREPs from one neighbor
    # (single via sidesteps the successor-stability rule, which the
    # abstraction deliberately omits).
    net = Network(LdrProtocol, StaticPlacement.line(2, 200.0))
    protocol = net.protocols[0]
    dst = 99  # not a real node: pure table exercise
    for sn, dist in ads:
        protocol._accept_advertisement(
            dst, LabeledSeq(0.0, sn), dist, via=1, lifetime=10.0)

    entry = protocol.table.get(dst)
    if label.sn is None:
        assert entry is None or entry.seqno is None
    else:
        assert entry is not None
        assert entry.seqno == LabeledSeq(0.0, label.sn)
        assert entry.dist == label.dist
        assert entry.fd == label.fd
