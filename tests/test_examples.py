"""Smoke tests: the example scripts must run end to end.

Only the quick examples run in the suite (the shootout and paper-table
generators take minutes); for those we just verify importability of their
modules' dependencies via compile().
"""

import pathlib
import runpy
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def test_figure1_walkthrough_runs(capsys):
    runpy.run_path(str(EXAMPLES / "figure1_walkthrough.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "Phase 1" in out
    assert "Matches the paper" in out


def test_model_checking_runs(capsys):
    runpy.run_path(str(EXAMPLES / "model_checking.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "loop-free" in out
    assert "LOOP FOUND" in out


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "protocol_shootout.py",
    "loop_freedom_audit.py",
    "paper_tables.py",
    "coordination_cost.py",
])
def test_examples_compile(script):
    source = (EXAMPLES / script).read_text()
    compile(source, script, "exec")


def test_quickstart_subprocess_smoke():
    """Run the cheapest full example as a real subprocess."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "figure1_walkthrough.py")],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0
    assert "delivered at T: True" in result.stdout
