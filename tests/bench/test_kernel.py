"""Tests for the kernel-benchmark harness (repro.bench).

Real timing numbers are machine noise; these tests pin the *mechanics*:
report shape, baseline comparison math, and CLI exit codes — with tiny
sweep sizes so the whole file stays cheap.
"""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    compare_to_baseline,
    extract_speedups,
    run_kernel_bench,
)
from repro.bench.cli import main


def _tiny_report(**kw):
    defaults = dict(sizes=(6,), rounds=1, transmit_reps=2,
                    include_trials=False, sched_ops_events=500, seed=3)
    defaults.update(kw)
    return run_kernel_bench(**defaults)


# ---------------------------------------------------------------------------
# Report shape
# ---------------------------------------------------------------------------

def test_report_shape_and_row_fields():
    report = _tiny_report()
    assert report["schema"] == BENCH_SCHEMA
    assert report["seed"] == 3
    assert report["settings"]["sizes"] == [6]
    benches = {row["bench"] for row in report["results"]}
    assert benches == {"neighbors_of", "transmit", "sched_ops"}
    for row in report["results"]:
        if row["bench"] == "sched_ops":
            assert row["n"] == 500
            assert row["heap_ns_per_op"] > 0
            assert row["calendar_ns_per_op"] > 0
            assert row["speedup"] == pytest.approx(
                row["heap_ns_per_op"] / row["calendar_ns_per_op"])
            continue
        assert row["n"] == 6
        assert row["scan_ns_per_op"] > 0
        assert row["grid_ns_per_op"] > 0
        assert row["speedup"] == pytest.approx(
            row["scan_ns_per_op"] / row["grid_ns_per_op"])
    assert json.loads(json.dumps(report)) == report  # JSON-able throughout


def test_sched_ops_zero_disables_kernel():
    report = _tiny_report(sched_ops_events=0)
    assert {row["bench"] for row in report["results"]} \
        == {"neighbors_of", "transmit"}


def test_trial_rows_present_when_enabled():
    report = run_kernel_bench(sizes=(6,), rounds=1, transmit_reps=1,
                              trial_sizes=(8,), trial_duration=1.0,
                              protocols=("ldr",), seed=2,
                              sched_ops_events=0, full_trial_sizes=(8,))
    trial_rows = [r for r in report["results"] if r["bench"] == "trial:ldr"]
    assert len(trial_rows) == 1
    row = trial_rows[0]
    assert row["scan_s"] > 0 and row["grid_s"] > 0
    assert row["scan_trials_per_sec"] == pytest.approx(1.0 / row["scan_s"])
    full_rows = [r for r in report["results"]
                 if r["bench"] == "full_trial:ldr"]
    assert len(full_rows) == 1
    row = full_rows[0]
    assert row["reference_s"] > 0 and row["fast_s"] > 0
    assert row["speedup"] == pytest.approx(
        row["reference_s"] / row["fast_s"])
    assert report["settings"]["full_trial_sizes"] == [8]


def test_progress_callback_sees_every_stage():
    lines = []
    _tiny_report(progress=lines.append)
    assert any("neighbors_of" in line for line in lines)
    assert any("transmit" in line for line in lines)
    assert any("sched_ops" in line for line in lines)


# ---------------------------------------------------------------------------
# Baseline comparison math (pure, no timing involved)
# ---------------------------------------------------------------------------

def _fake_report(speedups):
    results = []
    for key, speedup in speedups.items():
        bench, n = key.rsplit("/", 1)
        results.append({"bench": bench, "n": int(n),
                        "scan_ns_per_op": speedup, "grid_ns_per_op": 1.0,
                        "speedup": speedup})
    return {"schema": BENCH_SCHEMA, "results": results}


def test_extract_speedups_keys_by_bench_and_n():
    report = _fake_report({"neighbors_of/200": 4.0, "transmit/50": 1.2})
    assert extract_speedups(report) == {"neighbors_of/200": 4.0,
                                        "transmit/50": 1.2}


def test_compare_flags_only_real_regressions():
    baseline = {"speedups": {"neighbors_of/200": 4.0, "transmit/50": 1.2}}
    # 4.0 -> 3.3 is within 25% (floor 3.2); 1.2 -> 0.9 is below (floor 0.96).
    report = _fake_report({"neighbors_of/200": 3.3, "transmit/50": 0.9})
    regressions, skipped = compare_to_baseline(report, baseline,
                                               threshold=0.25)
    assert skipped == []
    assert [r["key"] for r in regressions] == ["transmit/50"]
    assert regressions[0]["floor"] == pytest.approx(1.2 / 1.25)


def test_compare_skips_unmeasured_baseline_entries():
    # --quick runs measure a subset: missing keys are reported as skipped,
    # never failed, and extra measured keys are never penalized.
    baseline = {"speedups": {"neighbors_of/400": 8.0, "transmit/50": 1.2}}
    report = _fake_report({"transmit/50": 1.3, "neighbors_of/25": 0.5})
    regressions, skipped = compare_to_baseline(report, baseline)
    assert regressions == []
    assert skipped == ["neighbors_of/400"]


def test_compare_handles_empty_baseline():
    regressions, skipped = compare_to_baseline(
        _fake_report({"transmit/50": 1.0}), {}, threshold=0.25)
    assert regressions == [] and skipped == []


# ---------------------------------------------------------------------------
# CLI exit codes and file outputs
# ---------------------------------------------------------------------------

def _cli(tmp_path, *extra):
    out = tmp_path / "BENCH_kernel.json"
    argv = ["--sizes", "6", "--rounds", "1", "--transmit-reps", "1",
            "--no-trials", "--sched-ops-events", "500", "--out", str(out)]
    argv.extend(extra)
    return main(argv), out


def test_cli_writes_report_and_skips_gate_without_baseline(tmp_path,
                                                          monkeypatch):
    monkeypatch.chdir(tmp_path)  # default baseline path surely absent
    code, out = _cli(tmp_path)
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == BENCH_SCHEMA and report["results"]


def test_cli_explicit_missing_baseline_is_usage_error(tmp_path):
    code, _ = _cli(tmp_path, "--baseline", str(tmp_path / "absent.json"))
    assert code == 2


def test_cli_bad_sizes_is_usage_error(tmp_path):
    assert main(["--sizes", "ten", "--no-trials",
                 "--out", str(tmp_path / "r.json")]) == 2


def test_cli_update_baseline_then_gate_passes(tmp_path):
    baseline = tmp_path / "baseline.json"
    code, _ = _cli(tmp_path, "--baseline", str(baseline),
                   "--update-baseline")
    assert code == 0
    doc = json.loads(baseline.read_text())
    assert set(doc) == {"schema", "note", "speedups"}
    assert doc["speedups"]  # non-empty speedup map
    # Same machine, immediate re-run: must pass the gate (generous
    # threshold shields the 1-round timing noise).
    code, _ = _cli(tmp_path, "--baseline", str(baseline),
                   "--threshold", "1000")
    assert code == 0


def test_cli_detects_regression_against_doctored_baseline(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "schema": BENCH_SCHEMA,
        "speedups": {"neighbors_of/6": 1e9},  # unreachable speedup
    }))
    code, _ = _cli(tmp_path, "--baseline", str(baseline))
    assert code == 1
