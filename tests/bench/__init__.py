"""Tests for the repro.bench kernel-benchmark harness."""
