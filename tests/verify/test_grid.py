"""The divergence grid: verdicts, cross-checks, and the rendered table."""

import pytest

from repro.obs import TraceEvent, trace_header, write_trace
from repro.verify import (
    GridCell,
    first_route_divergence,
    format_grid,
    load_suite,
    run_grid,
)


@pytest.fixture(scope="module")
def grid(tmp_path_factory):
    base = tmp_path_factory.mktemp("grid")
    suite = load_suite()
    suite = {"ce-aodv-1": suite["ce-aodv-1"]}   # one row keeps this fast
    return run_grid(suite=suite, protocols=("ldr", "aodv"),
                    trace_dir=base / "traces", cache_dir=base / "cache")


def test_grid_cells_match_expectations(grid):
    cells, _ = grid
    by_protocol = {c.protocol: c for c in cells}
    assert set(by_protocol) == {"ldr", "aodv"}
    aodv = by_protocol["aodv"]
    assert aodv.online == "loop"
    assert aodv.offline == "loop"
    assert aodv.expected == "loop"
    assert not aodv.regression
    ldr = by_protocol["ldr"]
    assert ldr.online == "immune"
    assert ldr.offline == "immune"
    assert not ldr.regression


def test_grid_replay_agrees_with_monitor(grid):
    cells, _ = grid
    for cell in cells:
        assert cell.replay is not None
        assert cell.replay.agreement is True
        assert cell.consistent


def test_grid_pinpoints_the_ldr_aodv_divergence(grid):
    cells, divergences = grid
    assert "ce-aodv-1" in divergences
    divergence = divergences["ce-aodv-1"]
    assert divergence is not None          # the tables must part ways
    index, a, b = divergence
    assert index >= 0
    assert (a is None) or (b is None) or (a.canonical() != b.canonical())


def test_format_grid_renders_status_and_divergence(grid):
    cells, divergences = grid
    text = format_grid(cells, divergences)
    assert "expected" in text and "agreement" in text
    assert " ok" in text
    assert "REGRESSION" not in text
    assert "first LDR-vs-AODV route divergence" in text
    assert "ce-aodv-1" in text


def test_regression_when_verdict_deviates(grid):
    cells, _ = grid
    cell = next(c for c in cells if c.protocol == "aodv")
    flipped = GridCell(
        counterexample=cell.counterexample, protocol="aodv",
        expected="immune", online=cell.online, replay=cell.replay,
        trace_path=cell.trace_path,
    )
    assert flipped.regression
    assert "REGRESSION" in format_grid([flipped])


def test_untraced_cell_is_consistent_by_default(grid):
    cells, _ = grid
    cell = cells[0]
    untraced = GridCell(
        counterexample=cell.counterexample, protocol=cell.protocol,
        expected=cell.expected, online=cell.online, replay=None,
        trace_path=None,
    )
    assert untraced.offline is None
    assert untraced.consistent
    assert "untraced" in format_grid([untraced])


def _write(path, events, **extra):
    write_trace(path, events, header=trace_header(**extra))
    return path


def test_first_route_divergence_on_synthetic_traces(tmp_path):
    shared = [TraceEvent(1.0, "route", 0, {"dst": 2, "successor": 1})]
    a = _write(tmp_path / "a.jsonl", shared + [
        TraceEvent(2.0, "route", 1, {"dst": 2, "successor": 2})])
    b = _write(tmp_path / "b.jsonl", shared + [
        TraceEvent(2.0, "route", 1, {"dst": 2, "successor": 0})])
    divergence = first_route_divergence(a, b)
    assert divergence is not None
    index, ea, eb = divergence
    assert index == 1
    assert ea.data["successor"] == 2 and eb.data["successor"] == 0

    # Identical traces: no divergence.
    assert first_route_divergence(a, a) is None

    # One side runs out: the extra event is the divergence point.
    c = _write(tmp_path / "c.jsonl", shared)
    divergence = first_route_divergence(a, c)
    assert divergence == (1, None, None) or divergence[0] == 1
    assert divergence[2] is None

    # Non-route events never count.
    d = _write(tmp_path / "d.jsonl", shared + [
        TraceEvent(3.0, "tx", 0, {})])
    assert first_route_divergence(c, d) is None
