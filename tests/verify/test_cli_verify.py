"""``repro verify`` CLI smoke tests, through the real argv entry point."""

import gzip
import json

from repro.__main__ import main


def test_verify_list(capsys):
    assert main(["verify", "list"]) == 0
    out = capsys.readouterr().out
    assert "ce-aodv-1" in out and "ce-aodv-2" in out and "ce-aodv-3" in out
    assert "arXiv" in out
    assert "aodv=loop" in out


def test_verify_run_aodv_loops(capsys):
    assert main(["verify", "run", "ce-aodv-1", "--protocol", "aodv"]) == 0
    out = capsys.readouterr().out
    assert "verdict=loop expected=loop" in out
    assert "loop=" in out
    assert "routing loop" in out


def test_verify_run_ldr_is_immune_with_trace(tmp_path, capsys):
    trace = tmp_path / "ldr.trace.jsonl.gz"
    assert main(["verify", "run", "ce-aodv-1", "--protocol", "ldr",
                 "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "verdict=immune expected=immune" in out
    assert trace.is_file()
    with gzip.open(trace, "rt", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
    assert header["type"] == "header"
    assert header["config"]["protocol"] == "ldr"
    assert header["destinations"] == [2]


def test_verify_run_unknown_name(capsys):
    assert main(["verify", "run", "no-such-ce"]) == 2
    assert "unknown counterexample" in capsys.readouterr().out


def test_verify_run_flags_verdict_regression(tmp_path, capsys):
    # Pin a wrong expectation in a scratch suite dir: the run must exit 1.
    from repro.verify import COUNTEREXAMPLES_DIR

    data = json.loads(
        (COUNTEREXAMPLES_DIR / "ce-aodv-1.json").read_text())
    data["expected"] = {"*": "immune"}
    (tmp_path / "ce-aodv-1.json").write_text(json.dumps(data))
    assert main(["verify", "run", "ce-aodv-1", "--protocol", "aodv",
                 "--dir", str(tmp_path)]) == 1
    assert "VERDICT REGRESSION" in capsys.readouterr().out


def test_verify_replay_roundtrip(tmp_path, capsys):
    trace = tmp_path / "run.trace.jsonl"
    assert main(["verify", "run", "ce-aodv-1", "--protocol", "aodv",
                 "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["verify", "replay", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "verdict=loop" in out
    assert "monitor-agreement=yes" in out


def test_verify_replay_missing_file(capsys):
    assert main(["verify", "replay", "/no/such/trace.jsonl"]) == 2
    assert "error:" in capsys.readouterr().out


def test_verify_grid_smoke(tmp_path, capsys):
    # Restrict to one counterexample for speed; full matrix is CI's job.
    from repro.verify import COUNTEREXAMPLES_DIR

    suite_dir = tmp_path / "suite"
    suite_dir.mkdir()
    (suite_dir / "ce-aodv-3.json").write_text(
        (COUNTEREXAMPLES_DIR / "ce-aodv-3.json").read_text())
    assert main([
        "verify", "grid", "--dir", str(suite_dir),
        "--protocols", "ldr,aodv",
        "--trace-dir", str(tmp_path / "traces"),
        "--cache-dir", str(tmp_path / "cache"),
        "--gzip",
    ]) == 0
    out = capsys.readouterr().out
    assert "ce-aodv-3" in out
    assert "REGRESSION" not in out
    assert "first LDR-vs-AODV route divergence" in out
    gz = list((tmp_path / "traces").glob("*.trace.jsonl.gz"))
    assert gz, "grid --gzip must leave gzip artifacts behind"
