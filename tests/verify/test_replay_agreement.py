"""Replay-vs-monitor agreement on real churn traces, per protocol.

The conformance contract: for any trace the simulator writes, the
offline :mod:`repro.verify.replay` checker must reach exactly the same
violations (timestamp and kind) the online monitor recorded into the
trace.  Disagreement means one of the two checkers is wrong, and is a
test failure in its own right.
"""

import pytest

from repro.experiments.campaigns import churn_plans
from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.obs import trace_header, write_trace
from repro.verify import replay_trace
from repro.verify.counterexamples import verdict_from_breakdown


def churned_trace(tmp_path, protocol, plan_name="reboot", seed=3,
                  gz=False):
    plans = dict(churn_plans(14.0, 10))
    config = ScenarioConfig(
        protocol=protocol, num_nodes=10, num_flows=3, duration=14.0,
        seed=seed, fault_plan=plans[plan_name], invariant_check=True,
        trace=True,
    )
    scenario = build_scenario(config)
    scenario.run()
    name = "%s.trace.jsonl%s" % (protocol, ".gz" if gz else "")
    path = tmp_path / name
    write_trace(path, scenario.trace, header=trace_header(
        config=config,
        destinations=sorted(scenario.traffic.destinations_used()),
    ))
    return path, scenario


@pytest.mark.parametrize("protocol", ["ldr", "aodv", "dsr"])
def test_replay_agrees_with_monitor_under_churn(tmp_path, protocol):
    path, scenario = churned_trace(tmp_path, protocol)
    result = replay_trace(path)
    assert result.truncated is False
    assert result.agreement is True, (
        "offline replay diverged from the online monitor:\n"
        "  replay  : %r\n  monitor : %r"
        % (sorted((t, k) for t, k, _ in result.violations),
           sorted(result.recorded)))
    # The offline verdict equals what the monitor's own histogram implies.
    online = {k: v for k, v in scenario.monitor.summary().items()
              if k != "reconvergence"}
    assert result.verdict == verdict_from_breakdown(online)


def test_agreement_survives_gzip(tmp_path):
    path, _ = churned_trace(tmp_path, "ldr", gz=True)
    assert path.suffix == ".gz"
    result = replay_trace(path)
    assert result.agreement is True


@pytest.mark.parametrize("plan_name", ["crash", "partition"])
def test_agreement_across_fault_shapes(tmp_path, plan_name):
    path, _ = churned_trace(tmp_path, "ldr", plan_name=plan_name)
    result = replay_trace(path)
    assert result.agreement is True


def test_dropped_prefix_loop_is_never_certified(tmp_path):
    """Retention cap drops the loop's route events: refuse to certify.

    ce-aodv-1 on AODV forms its loop around t=5.4; a ``newest``-policy
    ring small enough to drop those events leaves a retained suffix with
    no loop evidence.  The only sound verdict for that artifact is
    ``inconclusive`` — an ``immune`` here would silently certify a trace
    that *contains* a loop.
    """
    from collections import deque

    from repro.verify import load_suite

    ce = load_suite()["ce-aodv-1"]
    config = ce.config("aodv", trace=True)
    scenario = build_scenario(config)
    recorder = scenario.trace
    recorder.policy = "newest"
    recorder.max_events = 40
    recorder.events = deque(maxlen=40)
    scenario.run()
    assert scenario.monitor.summary().get("loop")   # the loop DID happen
    assert recorder.truncated

    path = tmp_path / "capped.trace.jsonl"
    write_trace(path, recorder, header=trace_header(
        config=config, destinations=[2]))
    result = replay_trace(path)
    assert result.truncated is True
    assert result.verdict == "inconclusive"
    assert result.agreement is None
    # Header bookkeeping: every event was counted even though most fell
    # out of the ring.
    assert result.header["recorded"] > 40
