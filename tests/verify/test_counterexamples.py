"""The shipped counterexample suite: loading, execution, determinism."""

import json
import pathlib

import pytest

from repro.verify import (
    Counterexample,
    CounterexampleError,
    load_counterexample,
    load_suite,
    run_counterexample,
    verdict_from_breakdown,
)


@pytest.fixture(scope="module")
def suite():
    return load_suite()


def test_suite_ships_the_published_interleavings(suite):
    assert set(suite) >= {"ce-aodv-1", "ce-aodv-2", "ce-aodv-3"}
    for ce in suite.values():
        assert ce.source
        assert ce.placements and len(ce.placements) == ce.num_nodes
        assert ce.flows
        assert ce.fault_plan.events
        assert ce.expected


def test_config_pins_everything(suite):
    config = suite["ce-aodv-1"].config("aodv")
    assert config.protocol == "aodv"
    assert config.num_flows == 0          # no random traffic at all
    assert config.invariant_check is True
    assert config.placements is not None
    assert config.flows
    assert config.fault_plan is not None
    # The pinned schedule must serialize (cache + worker dispatch).
    rebuilt = type(config).from_dict(config.to_dict())
    assert rebuilt.placements == config.placements
    assert rebuilt.flows == config.flows


def test_expected_verdict_fallback(suite):
    ce = suite["ce-aodv-1"]
    assert ce.expected_verdict("aodv") == "loop"
    assert ce.expected_verdict("tora") == "loop"
    assert ce.expected_verdict("ldr") == "immune"
    assert ce.expected_verdict("dsr") == "immune"


def test_aodv_loops_on_ce1_and_ldr_is_immune(suite):
    """The headline claim: the published attack, executable.

    AODV forms the mutual-successor loop under the reboot +
    unknown-seq-RREQ schedule; LDR under the *identical* placements,
    flows, and fault plan does not (Theorem 4).
    """
    ce = suite["ce-aodv-1"]
    aodv = run_counterexample(ce, "aodv")
    assert aodv.verdict == "loop"
    assert aodv.breakdown.get("loop", 0) >= 1
    assert any("routing loop" in detail for _, _, detail in aodv.violations)
    assert aodv.matches_expected

    ldr = run_counterexample(ce, "ldr")
    assert ldr.verdict == "immune"
    assert ldr.violations == []
    assert ldr.matches_expected


def test_ce2_pins_the_draft_behavior_that_dodges_the_loop(suite):
    """ce-aodv-2's loop is prevented by §6.11 + §6.5; assert the dodge."""
    ce = suite["ce-aodv-2"]
    result = run_counterexample(ce, "aodv")
    assert result.verdict == "immune"
    assert result.matches_expected
    assert "§6.11" in ce.notes["aodv"] or "6.11" in ce.notes["aodv"]


def test_ce3_destination_reboot_is_survivable_for_both(suite):
    ce = suite["ce-aodv-3"]
    for protocol in ("aodv", "ldr"):
        result = run_counterexample(ce, protocol)
        assert result.verdict == "immune", protocol


def test_counterexample_runs_are_deterministic(suite, tmp_path):
    """Same schedule, same seed: same verdict, byte-identical traces."""
    ce = suite["ce-aodv-1"]
    first = run_counterexample(ce, "aodv", trace_path=tmp_path / "a.jsonl")
    second = run_counterexample(ce, "aodv", trace_path=tmp_path / "b.jsonl")
    assert first.verdict == second.verdict
    assert [v[:2] for v in first.violations] == [
        v[:2] for v in second.violations]
    assert (tmp_path / "a.jsonl").read_bytes() == (
        tmp_path / "b.jsonl").read_bytes()


def test_gzip_traces_are_deterministic_too(suite, tmp_path):
    ce = suite["ce-aodv-3"]
    run_counterexample(ce, "ldr", trace_path=tmp_path / "a.jsonl.gz")
    run_counterexample(ce, "ldr", trace_path=tmp_path / "b.jsonl.gz")
    a = (tmp_path / "a.jsonl.gz").read_bytes()
    assert a == (tmp_path / "b.jsonl.gz").read_bytes()
    assert a[:2] == b"\x1f\x8b"  # actually gzip


def test_verdict_from_breakdown_vocabulary():
    assert verdict_from_breakdown({}) == "immune"
    assert verdict_from_breakdown({"ordering": 0}) == "immune"
    assert verdict_from_breakdown({"loop": 2}) == "loop"
    assert verdict_from_breakdown({"seqnum_ownership": 1}) == "flagged"
    assert verdict_from_breakdown({"loop": 1, "ordering": 3}) == "loop"


def test_missing_fields_are_rejected():
    with pytest.raises(CounterexampleError):
        Counterexample({"name": "x"})


def test_unknown_expected_verdict_is_rejected(suite):
    data = json.loads(pathlib.Path(suite["ce-aodv-1"].origin).read_text())
    data["expected"] = {"aodv": "explodes"}
    with pytest.raises(CounterexampleError):
        Counterexample(data)


def test_malformed_file_raises(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(CounterexampleError):
        load_counterexample(bad)


def test_empty_directory_raises(tmp_path):
    with pytest.raises(CounterexampleError):
        load_suite(tmp_path)
