"""Cycle-detector unit tests: hand-built route-event streams.

These exercise :class:`ReplayChecker` in isolation — no simulator, no
monitor — on tiny synthetic traces, so the loop/ordering/ownership logic
is pinned independently of the end-to-end agreement tests.
"""

from repro.obs.events import TraceEvent
from repro.verify import replay_events


def header(num_nodes=3, protocol="aodv", duration=10.0, **extra):
    doc = {
        "type": "header", "schema": 2,
        "config": {"protocol": protocol, "num_nodes": num_nodes,
                   "duration": duration},
        "truncated": False,
    }
    doc.update(extra)
    return doc


def route(t, node, dst, successor, metric=None, dst_own=None):
    return TraceEvent(t, "route", node, {
        "dst": dst, "successor": successor, "metric": metric,
        "dst_own": dst_own,
    })


def fault(t, what, target):
    return TraceEvent(t, "fault", None,
                      {"fault": what, "target": target, "what": what})


def violation(t, node, kind):
    return TraceEvent(t, "violation", node, {"violation": kind})


# -- loop detection ------------------------------------------------------


def test_clean_chain_is_immune():
    events = [route(1.0, 0, 2, 1), route(1.1, 1, 2, 2)]
    result = replay_events(header(), events, destinations=[2])
    assert result.verdict == "immune"
    assert result.violations == []


def test_two_node_loop_is_caught():
    # 0 -> 1 -> 0 toward destination 2: the mutual-successor loop.
    events = [route(1.0, 0, 2, 1), route(2.0, 1, 2, 0)]
    result = replay_events(header(), events, destinations=[2])
    assert result.verdict == "loop"
    kinds = [kind for _, kind, _ in result.violations]
    assert "loop" in kinds
    first = next(v for v in result.violations if v[1] == "loop")
    assert first[0] == 2.0                    # caught at the change, not later
    assert "routing loop for destination 2" in first[2]


def test_self_loop_is_caught():
    events = [route(3.0, 0, 2, 0)]
    result = replay_events(header(), events, destinations=[2])
    assert result.verdict == "loop"
    assert any("[0, 0]" in detail for _, kind, detail in result.violations
               if kind == "loop")


def test_heal_then_reloop_is_caught_twice():
    events = [
        route(1.0, 0, 2, 1), route(2.0, 1, 2, 0),   # loop forms
        route(3.0, 1, 2, None),                     # heals (route lost)
        route(4.0, 1, 2, 0),                        # re-forms
        route(5.0, 1, 2, None),                     # heals before the end
    ]
    result = replay_events(header(), events, destinations=[2])
    loops = [v for v in result.violations if v[1] == "loop"]
    assert [when for when, _, _ in loops] == [2.0, 4.0]


def test_persisting_loop_is_refound_by_the_end_sweep():
    # The monitor's check_all sweeps destinations at t=duration; a loop
    # still standing at shutdown is recorded once more.
    events = [route(1.0, 0, 2, 1), route(2.0, 1, 2, 0)]
    result = replay_events(header(duration=10.0), events, destinations=[2])
    loops = [when for when, kind, _ in result.violations if kind == "loop"]
    assert loops == [2.0, 10.0]


def test_at_most_one_loop_per_audit():
    # Two disjoint loops toward the same destination: the walk stops at
    # the first breach per table change, mirroring LoopError semantics.
    events = [
        route(1.0, 0, 4, 1), route(1.5, 3, 4, 3),   # self-loop at t=1.5
        route(2.0, 1, 4, 0),                        # 0<->1 loop at t=2.0
    ]
    result = replay_events(header(num_nodes=5), events, destinations=[4])
    by_time = {}
    for when, kind, _ in result.violations:
        if kind == "loop":
            by_time[when] = by_time.get(when, 0) + 1
    assert all(count == 1 for count in by_time.values())


def test_chain_through_crashed_node_is_not_a_loop():
    events = [
        route(1.0, 0, 2, 1), route(1.1, 1, 2, 2),
        fault(2.0, "crash", 1),
    ]
    result = replay_events(header(), events, destinations=[2])
    assert result.verdict == "immune"


# -- crash/reboot bookkeeping --------------------------------------------


def test_crashed_node_table_change_is_dead_and_quarantined():
    events = [
        fault(1.0, "crash", 1),
        route(2.0, 1, 2, 0),     # stale instance writes after the crash
    ]
    result = replay_events(header(), events, destinations=[2])
    assert [kind for _, kind, _ in result.violations] == ["dead_table_change"]
    # ...and the write must NOT have entered the successor graph.
    assert result.verdict == "flagged"


def test_crash_clears_state_so_reboot_starts_fresh():
    events = [
        route(1.0, 0, 2, 1), route(1.1, 1, 2, 2),
        fault(2.0, "crash", 1),
        fault(3.0, "reboot", 1),
        # If node 1's pre-crash successor (2) resurfaced, 0 -> 1 -> 2
        # would still terminate; instead point 0 at 1 with 1 empty:
        route(4.0, 0, 2, 1),
    ]
    result = replay_events(header(), events, destinations=[2])
    assert result.verdict == "immune"


def test_dead_delivery_and_transmit():
    events = [
        fault(1.0, "crash", 1),
        TraceEvent(2.0, "deliver", 1, {"src": 0}),
        TraceEvent(2.5, "tx", 1, {}),
    ]
    result = replay_events(header(), events, destinations=[])
    kinds = sorted(kind for _, kind, _ in result.violations)
    assert kinds == ["dead_delivery", "dead_transmit"]


# -- LDR ordering (Theorem 2) --------------------------------------------


def test_ordering_checked_only_for_ldr_traces():
    # downstream sn < upstream sn along the chain toward 2.
    events = [
        route(1.0, 1, 2, 2, metric=[[2.0, 0], 1, 1], dst_own=[2.0, 0]),
        route(2.0, 0, 2, 1, metric=[[3.0, 0], 2, 2], dst_own=[2.0, 0]),
    ]
    ldr = replay_events(header(protocol="ldr"), events, destinations=[2])
    assert any(kind == "ordering" for _, kind, _ in ldr.violations)
    aodv = replay_events(header(protocol="aodv"), events, destinations=[2])
    assert not any(kind == "ordering" for _, kind, _ in aodv.violations)


def test_equal_sn_requires_strictly_decreasing_fd():
    events = [
        route(1.0, 1, 2, 2, metric=[[1.0, 0], 1, 1]),
        route(2.0, 0, 2, 1, metric=[[1.0, 0], 1, 2]),   # fd not decreasing
    ]
    result = replay_events(header(protocol="ldr"), events, destinations=[2])
    assert any(kind == "ordering" and "feasible-distance" in detail
               for _, kind, detail in result.violations)


def test_theorem2_compliant_chain_is_clean():
    events = [
        route(1.0, 1, 2, 2, metric=[[1.0, 0], 1, 1]),
        route(2.0, 0, 2, 1, metric=[[1.0, 0], 2, 2]),   # same sn, fd 2 > 1
    ]
    result = replay_events(header(protocol="ldr"), events, destinations=[2])
    assert result.verdict == "immune"


# -- seqnum ownership ----------------------------------------------------


def test_forged_label_above_ceiling_is_flagged():
    events = [
        route(1.0, 1, 2, 2, metric=[[1.0, 0], 1, 1], dst_own=[1.0, 0]),
        route(2.0, 0, 2, 1, metric=[[5.0, 0], 2, 2], dst_own=[1.0, 0]),
    ]
    result = replay_events(header(protocol="ldr"), events, destinations=[2])
    assert any(kind == "seqnum_ownership"
               for _, kind, _ in result.violations)


def test_ceiling_is_monotone_across_samples():
    # A later dst_own sample below the running maximum must not lower
    # the ceiling and retroactively flag an honest label.
    events = [
        route(1.0, 1, 2, 2, metric=[[3.0, 0], 1, 1], dst_own=[3.0, 0]),
        route(2.0, 0, 2, 1, metric=[[3.0, 0], 2, 2], dst_own=[1.0, 0]),
    ]
    result = replay_events(header(protocol="ldr"), events, destinations=[2])
    assert not any(kind == "seqnum_ownership"
                   for _, kind, _ in result.violations)


def test_integer_seqnums_work_too():
    # AODV labels are plain ints; the ceiling logic must not assume LDR
    # pair labels.
    events = [
        route(1.0, 1, 2, 2, metric=[3, 1, None], dst_own=3),
        route(2.0, 0, 2, 1, metric=[9, 2, None], dst_own=3),
    ]
    result = replay_events(header(), events, destinations=[2])
    assert any(kind == "seqnum_ownership"
               for _, kind, _ in result.violations)


# -- truncation policy ---------------------------------------------------


def test_truncated_trace_is_inconclusive_even_when_clean():
    """A loop in the dropped prefix must never be certified away.

    The retained suffix here is perfectly clean — but the header says
    the recorder dropped events, so the only sound verdict is
    ``inconclusive``, not ``immune``.
    """
    clean_suffix = [route(9.0, 0, 2, 1), route(9.1, 1, 2, 2)]
    result = replay_events(header(truncated=True), clean_suffix,
                           destinations=[2])
    assert result.verdict == "inconclusive"
    assert result.agreement is None
    assert "truncated" in result.describe()


def test_truncated_trace_still_reports_suffix_violations():
    events = [route(8.0, 0, 2, 1), route(9.0, 1, 2, 0)]
    result = replay_events(header(truncated=True), events, destinations=[2])
    assert result.verdict == "inconclusive"      # never upgraded to loop
    assert any(kind == "loop" for _, kind, _ in result.violations)


# -- monitor agreement bookkeeping ---------------------------------------


def test_agreement_compares_time_and_kind():
    events = [
        route(1.0, 0, 2, 1),
        route(2.0, 1, 2, 0),
        violation(2.0, 1, "loop"),
        violation(10.0, None, "loop"),   # the end-sweep record
    ]
    result = replay_events(header(duration=10.0), events, destinations=[2])
    assert result.agreement is True


def test_monitor_only_kinds_are_excluded_from_agreement():
    events = [
        route(1.0, 0, 2, 1), route(1.1, 1, 2, 2),
        violation(5.0, 0, "reconvergence"),
    ]
    result = replay_events(header(), events, destinations=[2])
    assert result.agreement is True


def test_disagreement_is_surfaced():
    # The monitor recorded a loop the replay cannot reproduce.
    events = [route(1.0, 0, 2, 1), violation(1.0, 0, "loop")]
    result = replay_events(header(), events, destinations=[2])
    assert result.agreement is False
    assert "monitor-agreement=NO" in result.describe()
