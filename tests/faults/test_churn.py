"""The churn campaign: grids, aggregation, and the rendered table."""

from repro.experiments.campaigns import (
    CHURN_PROTOCOLS,
    Campaign,
    churn_grid,
    churn_plans,
    churn_table,
    format_churn,
)


def _tiny_campaign(**overrides):
    kw = dict(duration=12.0, trials=1, num_nodes_small=10)
    kw.update(overrides)
    return Campaign(**kw)


def test_churn_plans_have_expected_shapes():
    plans = dict(churn_plans(60.0, 50))
    assert plans["baseline"] is None
    crash = plans["crash"]
    assert all(e.kind == "node_crash" for e in crash)
    assert len(crash) == 5  # ~10% of 50 nodes
    reboot = plans["reboot"]
    kinds = sorted(set(e.kind for e in reboot))
    assert kinds == ["node_crash", "node_reboot"]
    partition = plans["partition"]
    assert partition.reconvergence_bound is not None
    fuzz = plans["fuzz"]
    assert fuzz.events[0].kind == "packet_fuzz"


def test_churn_plans_serialize_and_are_stable():
    for name, plan in churn_plans(60.0, 50):
        if plan is None:
            continue
        again = dict(churn_plans(60.0, 50))[name]
        assert plan.to_dict() == again.to_dict(), name


def test_churn_grid_covers_every_cell_with_monitor_on():
    campaign = _tiny_campaign(trials=2)
    labels, configs = churn_grid(campaign)
    plans = churn_plans(campaign.duration, campaign.num_nodes_small)
    assert len(configs) == len(plans) * len(CHURN_PROTOCOLS) * 2
    assert set(labels) == {(f, p) for f, _ in plans for p in CHURN_PROTOCOLS}
    assert all(c.invariant_check for c in configs)
    seeds = {c.seed for c in configs}
    assert seeds == {1, 2}


def test_churn_table_aggregates_and_renders():
    campaign = _tiny_campaign()
    table = churn_table(campaign, protocols=("ldr", "aodv"))
    assert len(table) == 5 * 2  # five plans x two protocols
    for row in table:
        assert 0.0 <= row["delivery_ratio"] <= 1.0
        assert row["trials"] == 1
    ldr_rows = [r for r in table if r["protocol"] == "ldr"]
    assert all(r["loop_violations"] == 0 for r in ldr_rows)
    rendered = format_churn(table)
    for token in ("baseline", "crash", "reboot", "partition", "fuzz",
                  "ldr", "aodv", "delivery", "invariant"):
        assert token in rendered
