"""InvariantMonitor: clean runs stay clean, violations are caught.

The centrepiece is the issue's acceptance scenario: a flow crosses a
relay, the relay crashes mid-flow and reboots with zeroed counters, a
partition opens and heals — and LDR comes out with ZERO loop/ordering
violations under a strict monitor.
"""

import pytest

from repro.core import LdrProtocol
from repro.faults import (
    FaultInjector,
    FaultPlan,
    InvariantMonitor,
    InvariantViolation,
    NodeCrash,
    NodeReboot,
    Partition,
)
from repro.mobility import StaticPlacement
from repro.routing.seqnum import LabeledSeq
from tests.conftest import Network


def _monitored(net, plan=None, strict=True, demands=()):
    monitor = InvariantMonitor(
        net.sim, net.protocols, nodes=net.nodes, channel=net.channel,
        metrics=net.metrics, strict=strict,
        reconvergence_bound=(plan.reconvergence_bound if plan else None),
        demand_fn=lambda: demands,
    ).install()
    injector = None
    if plan is not None:
        injector = FaultInjector(net.sim, net.nodes, net.channel, plan,
                                 protocols=net.protocols,
                                 monitor=monitor).install()
    return monitor, injector


def test_acceptance_crash_reboot_heal_is_violation_free_for_ldr():
    net = Network(LdrProtocol, StaticPlacement.line(5, 200.0))
    plan = FaultPlan(
        events=[
            NodeCrash(2, 3.0),      # the relay of the 0 -> 4 flow
            NodeReboot(2, 6.0),     # back with a zeroed counter
            Partition([[0, 1, 2], [3, 4]], 8.0, 11.0),  # then heal
        ],
        reconvergence_bound=6.0,
    )
    monitor, _ = _monitored(net, plan, strict=True, demands=[(0, 4)])
    # A steady flow across the whole line, spanning every fault window.
    for i in range(72):
        net.sim.schedule_at(0.25 * i, net.nodes[0].send_data, 4)
    net.run(20.0)  # strict monitor: any violation raises immediately
    assert monitor.violations == []
    assert monitor.checks_run > 0  # the audit actually ran
    assert len(net.delivered_to(4)) > 0  # traffic flowed before/after faults
    assert net.metrics.loop_violations == 0
    assert sum(net.metrics.invariant_violations.values()) == 0


def test_loop_in_tables_is_recorded_with_kind():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0))
    monitor, _ = _monitored(net, strict=False)
    net.send(0, 2)
    net.run(1.0)
    # Forge a two-node cycle toward destination 2 behind the checker's back,
    # then poke the hook the way a real table change would.
    net.protocols[0].table[2].next_hop = 1
    net.protocols[1].table[2].next_hop = 0
    monitor.on_table_change(net.protocols[1], 2)
    kinds = [kind for _, kind, _ in monitor.violations]
    assert "loop" in kinds or "ordering" in kinds
    assert net.metrics.loop_violations >= 1


def test_strict_mode_raises_on_violation():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0))
    monitor, _ = _monitored(net, strict=True)
    net.send(0, 2)
    net.run(1.0)
    net.protocols[0].table[2].next_hop = 1
    net.protocols[1].table[2].next_hop = 0
    with pytest.raises(InvariantViolation):
        monitor.on_table_change(net.protocols[1], 2)


def test_seqnum_ownership_catches_forged_labels():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0))
    monitor, _ = _monitored(net, strict=False)
    net.send(0, 2)
    net.run(1.0)
    entry = net.protocols[0].table[2]
    # Nobody but node 2 may mint labels; forge one far in its future.
    entry.seqno = LabeledSeq(net.sim.now + 1000.0, 5)
    entry.fd = 0  # keep the forged route "best" so ordering does not fire first
    monitor.on_table_change(net.protocols[0], 2)
    kinds = [kind for _, kind, _ in monitor.violations]
    assert "seqnum_ownership" in kinds


def test_delivery_to_crashed_node_is_a_violation():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0))
    monitor, _ = _monitored(net, strict=False)
    net.run(0.5)
    net.nodes[2].crash()
    monitor.on_crash(2)
    # Force the fault-layer bug the check exists for.
    from repro.net.packet import DataPacket
    net.nodes[2].deliver(DataPacket(src=0, dst=2, size_bytes=64,
                                    flow_id=0, seq=0, created_at=0.0))
    kinds = [kind for _, kind, _ in monitor.violations]
    assert "dead_delivery" in kinds


def test_reconvergence_violation_when_no_route_after_heal():
    # Nodes 0 and 2 are physically connected via 1, but we gag discovery
    # so no route can form after the heal: the monitor must flag it.
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0))
    plan = FaultPlan(
        events=[Partition([[0], [1, 2]], 1.0, 2.0)],
        reconvergence_bound=3.0,
    )
    monitor, _ = _monitored(net, plan, strict=False, demands=[(0, 2)])
    for node in net.nodes.values():
        node.mac.down = True  # radios silently eat everything
    net.run(10.0)  # heal at t=2, deadline at t=5
    kinds = [kind for _, kind, _ in monitor.violations]
    assert "reconvergence" in kinds


def test_reconvergence_satisfied_when_route_reforms():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0))
    plan = FaultPlan(
        events=[Partition([[0], [1, 2]], 1.0, 2.0)],
        reconvergence_bound=5.0,
    )
    monitor, _ = _monitored(net, plan, strict=True, demands=[(0, 2)])
    for i in range(40):
        net.sim.schedule_at(0.25 * i, net.nodes[0].send_data, 2)
    net.run(10.0)
    assert all(kind != "reconvergence" for _, kind, _ in monitor.violations)


def test_monitor_ignores_stale_instance_after_reboot():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0))
    monitor, _ = _monitored(net, strict=True)
    net.send(0, 2)
    net.run(1.0)
    old = net.protocols[1]
    net.nodes[1].crash()
    monitor.on_crash(1)
    net.nodes[1].reboot()
    net.protocols[1] = net.nodes[1].routing
    monitor.on_reboot(1, net.nodes[1].routing)
    # The discarded instance still holds pre-crash state; its callbacks
    # must be ignored, not audited against the live tables.
    monitor.on_table_change(old, 2)
    assert monitor.violations == []


def test_scenario_level_faulted_ldr_run_reports_zero_violations():
    from repro.experiments.scenario import ScenarioConfig, run_scenario

    plan = FaultPlan(
        events=[
            NodeCrash(3, 8.0),
            NodeReboot(3, 14.0),
            Partition([[0, 1, 2, 3], [4, 5, 6, 7]], 18.0, 24.0),
        ],
        reconvergence_bound=10.0,
    )
    config = ScenarioConfig(
        protocol="ldr", num_nodes=8, num_flows=3, duration=40.0,
        width=800.0, height=600.0, pause_time=900.0, seed=11,
        fault_plan=plan, invariant_check=True,
    )
    row = run_scenario(config).as_dict()
    assert row["loop_violations"] == 0
    assert row["invariant_violations"] == 0
    assert row["data_delivered"] > 0
