"""FaultInjector behaviour on live networks: crash, reboot, deny, fuzz."""

from repro.core import LdrProtocol
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkBlackout,
    NodeCrash,
    NodeReboot,
    PacketFuzz,
    Partition,
)
from repro.mobility import StaticPlacement
from tests.conftest import Network


def _line(count=4, spacing=200.0):
    return Network(LdrProtocol, StaticPlacement.line(count, spacing))


def _install(net, plan):
    return FaultInjector(net.sim, net.nodes, net.channel, plan,
                         protocols=net.protocols).install()


def test_crash_silences_node_and_kills_forwarding():
    net = _line(4)
    _install(net, FaultPlan(events=[NodeCrash(1, 2.0)]))
    net.send(0, 3)
    net.run(1.0)
    delivered_before = len(net.delivered_to(3))
    assert delivered_before >= 1  # route established through 1 and 2
    net.run(2.0)  # crash at t=2 severs the only path
    assert not net.nodes[1].alive
    count_at_crash = len(net.delivered_to(3))
    net.send(0, 3)
    net.run(3.0)
    assert len(net.delivered_to(3)) == count_at_crash  # nothing new got through


def test_crashed_node_originates_nothing():
    net = _line(3)
    _install(net, FaultPlan(events=[NodeCrash(0, 1.0)]))
    net.run(2.0)
    originated = net.metrics.data_originated
    net.send(0, 2)  # crashed source: packet never enters the network
    net.run(1.0)
    assert net.metrics.data_originated == originated
    assert len(net.delivered_to(2)) == 0


def test_reboot_restores_connectivity_with_fresh_state():
    net = _line(3)
    plan = FaultPlan(events=[NodeCrash(1, 2.0), NodeReboot(1, 4.0)])
    _install(net, plan)
    net.send(0, 2)
    net.run(3.0)  # establish, then crash at t=2
    old_protocol = net.protocols[1]
    assert not net.nodes[1].alive
    net.run(2.0)  # reboot at t=4
    assert net.nodes[1].alive
    new_protocol = net.nodes[1].routing
    assert new_protocol is not old_protocol  # factory-fresh instance
    assert net.protocols[1] is new_protocol  # registry updated
    assert old_protocol.stopped
    assert new_protocol.table == {}  # the paper's loss-of-state model
    before = len(net.delivered_to(2))
    # The first post-reboot packet is legitimately dropped with a RERR
    # (the fresh relay has no route); subsequent sends rediscover.
    for i in range(6):
        net.sim.schedule_at(net.sim.now + 0.5 * i, net.nodes[0].send_data, 2)
    net.run(4.0)
    assert len(net.delivered_to(2)) > before  # relay works again


def test_rebooted_destination_label_outranks_stale_routes():
    """The reboot story: counter resets to zero, but the fresh boot-time
    timestamp keeps the destination's labels ahead of its old incarnation's.
    """
    net = _line(3)
    plan = FaultPlan(events=[NodeCrash(2, 2.0), NodeReboot(2, 4.0)])
    _install(net, plan)
    net.send(0, 2)
    net.run(1.0)
    stale = net.protocols[0].route_metric(2)[0]
    net.run(4.0)  # crash at 2, reboot at 4
    fresh = net.protocols[2].own_seq
    assert fresh.counter == 0  # zeroed by the reboot
    assert fresh > stale  # yet fresher than anything issued before


def test_link_blackout_window_denies_then_heals():
    net = _line(3)
    plan = FaultPlan(events=[LinkBlackout(0, 1, 1.0, 3.0)])
    _install(net, plan)
    assert net.channel.in_range(0, 1)
    net.run(2.0)  # inside the window
    assert not net.channel.in_range(0, 1)
    assert 1 not in net.channel.neighbors_of(0)
    net.run(2.0)  # past the heal
    assert net.channel.in_range(0, 1)


def test_partition_denies_every_cross_link():
    net = Network(LdrProtocol, StaticPlacement.grid(2, 2, 200.0))
    plan = FaultPlan(events=[Partition([[0, 1], [2, 3]], 1.0, 5.0)])
    _install(net, plan)
    net.run(2.0)
    assert not net.channel.in_range(0, 2)
    assert not net.channel.in_range(1, 3)
    assert net.channel.in_range(0, 1)  # intra-group link survives
    net.run(4.0)
    assert net.channel.in_range(0, 2)


def test_fuzz_draws_only_from_faults_stream():
    net = _line(3)
    plan = FaultPlan(events=[PacketFuzz(0.0, 10.0, corrupt=0.5)])
    injector = _install(net, plan)
    net.send(0, 2)
    net.run(5.0)
    assert injector.rng is net.sim.stream("faults")


def test_fuzz_window_installs_and_removes_channel_hook():
    net = _line(3)
    plan = FaultPlan(events=[PacketFuzz(1.0, 2.0, corrupt=1.0)])
    _install(net, plan)
    assert net.channel.fuzz_fn is None
    net.run(1.5)
    assert net.channel.fuzz_fn is not None
    net.run(1.0)
    assert net.channel.fuzz_fn is None


def test_full_corruption_blocks_all_delivery_inside_window():
    net = _line(3)
    plan = FaultPlan(events=[PacketFuzz(0.0, 30.0, corrupt=1.0)])
    _install(net, plan)
    net.send(0, 2)
    net.run(10.0)
    assert len(net.delivered_to(2)) == 0  # every reception corrupted


def test_applied_log_records_transitions_in_time_order():
    net = _line(4)
    plan = FaultPlan(events=[NodeCrash(1, 2.0), NodeReboot(1, 4.0),
                             LinkBlackout(2, 3, 1.0, 5.0)])
    injector = _install(net, plan)
    net.run(6.0)
    times = [when for when, _ in injector.applied]
    assert times == sorted(times)
    descriptions = " | ".join(what for _, what in injector.applied)
    assert "crash" in descriptions and "reboot" in descriptions
    assert "deny" in descriptions and "heal" in descriptions
