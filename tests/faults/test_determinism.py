"""Reproducibility of faulted runs: same (seed, plan) => identical rows.

These are the issue's acceptance criteria: byte-identical rows for two
runs of the same (seed, FaultPlan); ``--jobs 1`` vs ``--jobs 4`` parity;
and a cache *miss* when only the plan changes.
"""

import json

from repro.exec import CampaignEngine, ResultCache, trial_key
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.faults import (
    FaultPlan,
    NodeCrash,
    NodeReboot,
    PacketFuzz,
    Partition,
)


def _plan():
    return FaultPlan(
        events=[
            NodeCrash(3, 6.0),
            NodeReboot(3, 12.0),
            Partition([[0, 1, 2, 3], [4, 5, 6, 7]], 14.0, 18.0),
            PacketFuzz(4.0, 20.0, corrupt=0.05, duplicate=0.02, delay=0.05),
        ],
        reconvergence_bound=8.0,
    )


def _config(seed=9, plan=None):
    return ScenarioConfig(
        protocol="ldr", num_nodes=8, num_flows=3, duration=25.0,
        width=800.0, height=600.0, seed=seed,
        fault_plan=plan if plan is not None else _plan(),
        invariant_check=True,
    )


def test_same_seed_and_plan_give_byte_identical_rows():
    first = json.dumps(run_scenario(_config()).as_dict(), sort_keys=True)
    second = json.dumps(run_scenario(_config()).as_dict(), sort_keys=True)
    assert first == second


def test_jobs_1_and_jobs_4_rows_identical():
    configs = [_config(seed=s) for s in (1, 2, 3, 4)]
    serial = CampaignEngine(jobs=1).run_rows(configs)
    parallel = CampaignEngine(jobs=4).run_rows(
        [_config(seed=s) for s in (1, 2, 3, 4)])
    assert parallel == serial


def test_fault_plan_changes_cache_key():
    base = _config()
    tweaked_events = _plan()
    tweaked_events.events[0].time = 6.5  # one crash half a second later
    assert trial_key(base) != trial_key(_config(plan=tweaked_events))
    bound = _plan()
    bound.reconvergence_bound = 9.0  # even monitor knobs are identity
    assert trial_key(base) != trial_key(_config(plan=bound))
    assert trial_key(base) == trial_key(_config())  # and it is stable


def test_cache_misses_on_plan_change_and_hits_on_repeat(tmp_path):
    cache = ResultCache(tmp_path)
    first = CampaignEngine(cache=cache).run([_config()])
    assert first.executed == 1 and first.cached == 0
    repeat = CampaignEngine(cache=ResultCache(tmp_path)).run([_config()])
    assert repeat.cached == 1  # identical (seed, plan): replayed
    other = _plan()
    other.events[0].time = 7.0
    changed = CampaignEngine(cache=ResultCache(tmp_path)).run(
        [_config(plan=other)])
    assert changed.cached == 0 and changed.executed == 1  # plan is identity
    assert repeat.trials[0].row == first.trials[0].row


def test_faults_never_perturb_other_streams():
    """The fault layer is an overlay: a plan whose events have no effect
    (a fuzz window with all probabilities zero) leaves the run
    byte-identical to an unfaulted one — the injector and monitor consume
    nothing from the mobility/traffic/MAC streams."""
    quiet = ScenarioConfig(protocol="ldr", num_nodes=8, num_flows=3,
                           duration=10.0, width=800.0, height=600.0, seed=9)
    noop_plan = FaultPlan(events=[PacketFuzz(0.0, 10.0, corrupt=0.0,
                                             duplicate=0.0, delay=0.0)])
    faulted = quiet.replaced(fault_plan=noop_plan, invariant_check=True)
    quiet_row = run_scenario(quiet).as_dict()
    faulted_row = run_scenario(faulted).as_dict()
    assert json.dumps(faulted_row, sort_keys=True) == \
        json.dumps(quiet_row, sort_keys=True)
