"""FaultPlan construction, validation, and serialization round-trips."""

import json

import pytest

from repro.faults import (
    FaultPlan,
    FaultPlanError,
    LinkBlackout,
    NodeCrash,
    NodeReboot,
    PacketFuzz,
    Partition,
)


def _full_plan():
    return FaultPlan(
        events=[
            NodeCrash(3, 10.0),
            NodeReboot(3, 20.0),
            LinkBlackout(1, 2, 5.0, 15.0),
            Partition([[0, 1], [2, 3]], 30.0, 40.0),
            PacketFuzz(50.0, 60.0, corrupt=0.1, duplicate=0.05, delay=0.2,
                       max_delay=0.03),
        ],
        reconvergence_bound=12.5,
    )


def test_round_trip_is_identity():
    plan = _full_plan()
    rebuilt = FaultPlan.from_dict(plan.to_dict())
    assert rebuilt == plan
    assert rebuilt.to_dict() == plan.to_dict()


def test_to_dict_is_json_and_stable():
    plan = _full_plan()
    first = json.dumps(plan.to_dict(), sort_keys=True)
    second = json.dumps(_full_plan().to_dict(), sort_keys=True)
    assert first == second
    assert FaultPlan.from_dict(json.loads(first)) == plan


def test_empty_plan_round_trips():
    plan = FaultPlan()
    assert len(plan) == 0
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_plans_with_different_events_are_not_equal():
    a = FaultPlan(events=[NodeCrash(3, 10.0)])
    b = FaultPlan(events=[NodeCrash(3, 11.0)])
    assert a != b


def test_negative_time_rejected():
    with pytest.raises(FaultPlanError):
        NodeCrash(1, -1.0)


def test_empty_window_rejected():
    with pytest.raises(FaultPlanError):
        LinkBlackout(1, 2, 10.0, 10.0)


def test_self_link_blackout_rejected():
    with pytest.raises(FaultPlanError):
        LinkBlackout(2, 2, 0.0, 1.0)


def test_probability_out_of_range_rejected():
    with pytest.raises(FaultPlanError):
        PacketFuzz(0.0, 1.0, corrupt=1.5)


def test_partition_needs_disjoint_groups():
    with pytest.raises(FaultPlanError):
        Partition([[0, 1], [1, 2]], 0.0, 1.0)
    with pytest.raises(FaultPlanError):
        Partition([[0, 1]], 0.0, 1.0)  # one group is no partition


def test_partition_cross_pairs_cover_only_cross_links():
    partition = Partition([[0, 1], [2], [3]], 0.0, 1.0)
    pairs = set(frozenset(p) for p in partition.cross_pairs())
    assert frozenset((0, 1)) not in pairs
    assert pairs == {
        frozenset((0, 2)), frozenset((0, 3)), frozenset((1, 2)),
        frozenset((1, 3)), frozenset((2, 3)),
    }


def test_reboot_without_crash_rejected():
    with pytest.raises(FaultPlanError):
        FaultPlan(events=[NodeReboot(3, 20.0)])
    with pytest.raises(FaultPlanError):
        FaultPlan(events=[NodeCrash(3, 30.0), NodeReboot(3, 20.0)])


def test_double_crash_without_reboot_rejected():
    with pytest.raises(FaultPlanError):
        FaultPlan(events=[NodeCrash(3, 10.0), NodeCrash(3, 20.0)])
    # crash -> reboot -> crash again is legitimate churn
    FaultPlan(events=[NodeCrash(3, 10.0), NodeReboot(3, 20.0),
                      NodeCrash(3, 30.0)])


def test_unknown_event_kind_rejected():
    with pytest.raises(FaultPlanError):
        FaultPlan.from_dict({"events": [{"kind": "meteor_strike", "time": 1}]})


def test_describe_mentions_every_event():
    text = _full_plan().describe()
    for token in ("crash", "reboot", "blackout", "partition", "fuzz",
                  "reconvergence"):
        assert token in text
