"""Differential equivalence suite for the event-scheduler backends.

The calendar queue (:class:`~repro.sim.events.CalendarScheduler`) is a
pure speed substitute for the reference binary heap
(:class:`~repro.sim.events.EventScheduler`): same ``(time, seq)`` FIFO
tie-break, same clock/epoch accounting, same cancellation semantics.
This file holds that claim mechanically — seeded random *programs* of
schedule / schedule-at / cancel / timer-restart / partial-run operations
are replayed against both backends and every observable (fire order,
``now``, ``epoch``, ``pending_count``, ``peek_time``) must agree exactly.

The quick parametrization runs in tier-1; a wider sweep rides the
``slow`` marker.  End-to-end row/trace identity lives in
``tests/experiments/test_scheduler_determinism.py``.
"""

import random

import pytest

from repro.sim import Simulator, Timer
from repro.sim.events import SCHEDULER_BACKENDS, make_scheduler

BACKENDS = sorted(SCHEDULER_BACKENDS)

# A coarse delay grid keeps plenty of exact ties (the FIFO tie-break is
# the property most worth fuzzing) while still spreading events across
# many calendar buckets and rungs.
_DELAYS = (0.0, 0.0, 0.001, 0.001, 0.01, 0.03125, 0.2, 0.2, 1.0, 3.0, 17.5)


def _fuzz_log(backend, seed, steps):
    """Replay one seeded random scheduler program; return its trace.

    All randomness is drawn from a private ``random.Random(seed)`` in
    program order, so two backends given the same seed see the *same*
    program for as long as they behave identically — any divergence
    shows up as differing logs (the assertion), never as flakiness.
    """
    rng = random.Random(seed)
    sim = Simulator(seed=0, scheduler=backend)
    sched = sim.scheduler
    log = []
    handles = []  # every Event ever scheduled (fired or not) — cancel fuzz
    timers = [Timer(sim, (lambda i=i: log.append(
        ("timer", i, sim.now, sim.event_epoch)))) for i in range(4)]

    def fire(tag):
        log.append(("fire", tag, sim.now, sim.event_epoch))

    def spawn(tag, child_delay):
        # Child delay is drawn at schedule time (top-level, in program
        # order), so callbacks themselves consume no randomness.
        def cb():
            fire(tag)
            handles.append(sim.schedule(child_delay, fire, (tag, "child")))

        return cb

    for step in range(steps):
        op = rng.randrange(10)
        if op <= 3:  # schedule a plain or spawning event
            delay = rng.choice(_DELAYS)
            if rng.random() < 0.3:
                cb = spawn(step, rng.choice(_DELAYS))
                handles.append(sim.schedule(delay, cb))
            else:
                handles.append(sim.schedule(delay, fire, step))
        elif op == 4:  # absolute-time schedule
            handles.append(sim.schedule_at(
                sim.now + rng.choice(_DELAYS), fire, ("at", step)))
        elif op == 5 and handles:  # cancel anything ever scheduled
            handles[rng.randrange(len(handles))].cancel()
        elif op == 6:  # timer start/restart (restart storm is the point)
            timer = timers[rng.randrange(len(timers))]
            delay = rng.choice(_DELAYS)
            if timer.armed:
                timer.restart(delay)
            else:
                timer.start(delay)
        elif op == 7 and rng.random() < 0.5:  # timer cancel
            timers[rng.randrange(len(timers))].cancel()
        elif op == 8:  # partial drain by time
            sim.run(until=sim.now + rng.choice(_DELAYS))
        else:  # partial drain by event count
            sim.run(max_events=rng.randrange(4))
        log.append(("state", step, sim.now, sim.event_epoch,
                    sched.pending_count(), sched.peek_time()))
    sim.run()  # drain everything still queued
    log.append(("final", sim.now, sim.event_epoch, sched.pending_count()))
    return log


@pytest.mark.parametrize("seed", range(8))
def test_backends_agree_on_random_programs(seed):
    assert _fuzz_log("heap", seed, 150) == _fuzz_log("calendar", seed, 150)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(8, 72))
def test_backends_agree_wide_sweep(seed):
    assert _fuzz_log("heap", seed, 400) == _fuzz_log("calendar", seed, 400)


@pytest.mark.parametrize("backend", BACKENDS)
def test_simultaneous_events_fire_fifo_across_rungs(backend):
    # 500 events at one instant overflow a single calendar bucket and
    # force rung splits; insertion order must still be the fire order.
    sched = make_scheduler(backend)
    fired = []
    for i in range(500):
        sched.schedule(1.0, fired.append, i)
    sched.run()
    assert fired == list(range(500))


@pytest.mark.parametrize("backend", BACKENDS)
def test_interleaved_ties_preserve_global_seq_order(backend):
    # Ties created before, during, and after partial runs still honor the
    # global sequence numbering, including events scheduled mid-dispatch.
    sched = make_scheduler(backend)
    fired = []
    sched.schedule(2.0, fired.append, "a")
    sched.schedule(2.0, lambda: (fired.append("b"),
                                 sched.schedule(0.0, fired.append, "d")))
    sched.run(until=1.0)
    sched.schedule_at(2.0, fired.append, "c")
    sched.run()
    assert fired == ["a", "b", "c", "d"]


def test_calendar_rung_split_keeps_time_order():
    # A dense far-future cluster inside one bucket of a wide rung forces
    # the recursive rung *split* (distinct times, > _SPLIT_THRESHOLD
    # entries): everything must still fire in exact (time, seq) order.
    sched = make_scheduler("calendar")
    fired = []
    sched.schedule(0.5, fired.append, 0.5)
    for i in range(60):
        at = 100.0 + i * 1e-5
        sched.schedule_at(at, fired.append, at)
    sched.schedule_at(1000.0, fired.append, 1000.0)
    sched.run()
    assert fired == sorted(fired)
    assert len(fired) == 62 and sched.pending_count() == 0


def test_registry_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown scheduler"):
        make_scheduler("wheel-of-fortune")


@pytest.mark.parametrize("backend", BACKENDS)
def test_schedule_reserved_rejects_past_times(backend):
    sched = make_scheduler(backend)
    sched.schedule(1.0, lambda: None)
    sched.run()
    assert sched.now == 1.0
    seq = sched.reserve_seq()
    with pytest.raises(ValueError, match="in the past"):
        sched.schedule_reserved(0.5, seq, lambda: None)
