"""Unit tests for the Simulator façade."""

from repro.sim import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_and_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.5, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert sim.now == 1.5


def test_schedule_at_absolute():
    sim = Simulator()
    fired = []
    sim.schedule_at(2.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.5]


def test_stream_shortcut_is_deterministic():
    a = Simulator(seed=4).stream("x").random()
    b = Simulator(seed=4).stream("x").random()
    assert a == b


def test_seed_attribute_retained():
    assert Simulator(seed=17).seed == 17


def test_run_until_does_not_execute_future_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, 1)
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
