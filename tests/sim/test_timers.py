"""Unit tests for the restartable one-shot timer."""

import pytest

from repro.sim import Simulator, Timer
from repro.sim.events import SCHEDULER_BACKENDS

BACKENDS = sorted(SCHEDULER_BACKENDS)


def test_timer_fires_after_delay():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.run()
    assert fired == [2.0]


def test_timer_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(1))
    timer.start(2.0)
    timer.cancel()
    sim.run()
    assert fired == []


def test_timer_restart_replaces_expiry():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.schedule(1.0, lambda: timer.restart(5.0))
    sim.run()
    assert fired == [6.0]


def test_double_start_raises():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    timer.start(1.0)
    with pytest.raises(RuntimeError):
        timer.start(1.0)


def test_armed_and_expires_at():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    assert not timer.armed
    assert timer.expires_at is None
    timer.start(3.0)
    assert timer.armed
    assert timer.expires_at == 3.0
    sim.run()
    assert not timer.armed


def test_timer_can_start_again_after_firing():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    sim.run()
    timer.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0]


def test_cancel_idle_timer_is_noop():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    timer.cancel()
    assert not timer.armed


def test_negative_start_and_restart_rejected():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    with pytest.raises(ValueError):
        timer.start(-1.0)
    timer.start(2.0)
    with pytest.raises(ValueError):
        timer.restart(-1.0)
    # A rejected restart disarms rather than leaving a stale deadline.
    assert not timer.armed


@pytest.mark.parametrize("backend", BACKENDS)
def test_restart_storm_keeps_one_queued_entry(backend):
    # The whole point of the deferred re-arm: 10^4 deadline extensions
    # leave exactly ONE entry in the queue (the carrier), not 10^4
    # cancelled tombstones for the dispatch loop to drain later.
    sim = Simulator(scheduler=backend)
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    for i in range(1, 10_001):
        timer.restart(1.0 + i * 1e-4)
    deadline = 1.0 + 10_000 * 1e-4
    assert sim.scheduler.queued_count() == 1
    assert timer.expires_at == deadline
    sim.run()
    assert fired == [deadline]


@pytest.mark.parametrize("backend", BACKENDS)
def test_restart_to_earlier_deadline_requeues(backend):
    sim = Simulator(scheduler=backend)
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(5.0)
    timer.restart(1.0)
    sim.run()
    assert fired == [1.0]


def test_expires_at_tracks_true_deadline_past_carrier_expiry():
    # After a deferred restart the queued event is only a carrier; the
    # observable deadline must be the real one, before and after the
    # carrier fires (invisibly) and re-queues itself.
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    sim.run(until=0.5)
    timer.restart(3.5)  # deadline 4.0; carrier still queued at 1.0
    assert timer.armed and timer.expires_at == 4.0
    sim.run(until=2.0)  # carrier fired and re-queued; nothing observable
    assert fired == []
    assert timer.armed and timer.expires_at == 4.0
    sim.run()
    assert fired == [4.0]
    assert not timer.armed and timer.expires_at is None


def test_cancel_after_deferred_restart_silences_carrier():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    timer.restart(4.0)
    timer.cancel()
    sim.run()
    assert fired == []
    # ...and cancelling after the carrier already re-queued works too
    # (a crashed node disarming its timers mid-simulation).
    timer.start(1.0)
    timer.restart(4.0)
    sim.run(until=sim.now + 2.0)  # carrier fires, re-queues at deadline
    timer.cancel()
    sim.run()
    assert fired == []
    assert not timer.armed


def test_timer_restarts_cleanly_after_cancel_and_after_firing():
    # Crash/reboot lifecycle: disarm, then re-arm later from scratch.
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(3.0)
    timer.cancel()
    assert not timer.armed and timer.expires_at is None
    timer.start(1.0)  # start (not restart) is legal again once disarmed
    sim.run()
    assert fired == [1.0]
    timer.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0]
