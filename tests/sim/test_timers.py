"""Unit tests for the restartable one-shot timer."""

import pytest

from repro.sim import Simulator, Timer


def test_timer_fires_after_delay():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.run()
    assert fired == [2.0]


def test_timer_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(1))
    timer.start(2.0)
    timer.cancel()
    sim.run()
    assert fired == []


def test_timer_restart_replaces_expiry():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.schedule(1.0, lambda: timer.restart(5.0))
    sim.run()
    assert fired == [6.0]


def test_double_start_raises():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    timer.start(1.0)
    with pytest.raises(RuntimeError):
        timer.start(1.0)


def test_armed_and_expires_at():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    assert not timer.armed
    assert timer.expires_at is None
    timer.start(3.0)
    assert timer.armed
    assert timer.expires_at == 3.0
    sim.run()
    assert not timer.armed


def test_timer_can_start_again_after_firing():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    sim.run()
    timer.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0]


def test_cancel_idle_timer_is_noop():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    timer.cancel()
    assert not timer.armed
