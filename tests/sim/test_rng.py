"""Unit tests for deterministic RNG streams."""

from repro.sim.rng import RngStreams


def test_same_seed_same_stream_same_sequence():
    a = RngStreams(42).stream("mac.1")
    b = RngStreams(42).stream("mac.1")
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_seeds_differ():
    a = RngStreams(1).stream("mac.1")
    b = RngStreams(2).stream("mac.1")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_names_are_independent():
    streams = RngStreams(7)
    a = streams.stream("traffic")
    b = streams.stream("mobility")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    streams = RngStreams(0)
    assert streams.stream("x") is streams.stream("x")


def test_creation_order_does_not_matter():
    first = RngStreams(9)
    alpha_then_beta = first.stream("alpha").random()
    second = RngStreams(9)
    second.stream("beta")  # create in the other order
    beta_then_alpha = second.stream("alpha").random()
    assert alpha_then_beta == beta_then_alpha


def test_contains():
    streams = RngStreams(0)
    assert "q" not in streams
    streams.stream("q")
    assert "q" in streams
