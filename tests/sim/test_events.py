"""Unit tests for the event scheduler."""

import pytest

from repro.sim.events import SCHEDULER_BACKENDS, EventScheduler, make_scheduler


def test_events_fire_in_time_order():
    sched = EventScheduler()
    fired = []
    sched.schedule(2.0, fired.append, "late")
    sched.schedule(1.0, fired.append, "early")
    sched.schedule(1.5, fired.append, "middle")
    sched.run()
    assert fired == ["early", "middle", "late"]


def test_simultaneous_events_fire_fifo():
    sched = EventScheduler()
    fired = []
    for i in range(10):
        sched.schedule(1.0, fired.append, i)
    sched.run()
    assert fired == list(range(10))


def test_now_advances_to_event_time():
    sched = EventScheduler()
    seen = []
    sched.schedule(3.5, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [3.5]


def test_run_until_stops_before_later_events():
    sched = EventScheduler()
    fired = []
    sched.schedule(1.0, fired.append, "in")
    sched.schedule(5.0, fired.append, "out")
    sched.run(until=2.0)
    assert fired == ["in"]
    assert sched.now == 2.0


def test_event_at_exactly_until_fires():
    sched = EventScheduler()
    fired = []
    sched.schedule(2.0, fired.append, "edge")
    sched.run(until=2.0)
    assert fired == ["edge"]


def test_run_resumes_after_until():
    sched = EventScheduler()
    fired = []
    sched.schedule(5.0, fired.append, "later")
    sched.run(until=1.0)
    assert fired == []
    sched.run(until=10.0)
    assert fired == ["later"]


def test_cancelled_event_does_not_fire():
    sched = EventScheduler()
    fired = []
    event = sched.schedule(1.0, fired.append, "x")
    event.cancel()
    sched.run()
    assert fired == []


def test_cancel_is_idempotent():
    sched = EventScheduler()
    event = sched.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sched.run()


def test_negative_delay_rejected():
    sched = EventScheduler()
    with pytest.raises(ValueError):
        sched.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sched = EventScheduler()
    fired = []
    sched.schedule(1.0, lambda: sched.schedule_at(4.0, fired.append, "abs"))
    sched.run()
    assert fired == ["abs"]


def test_events_scheduled_during_run_execute():
    sched = EventScheduler()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sched.schedule(1.0, chain, n + 1)

    sched.schedule(0.0, chain, 0)
    sched.run()
    assert fired == [0, 1, 2, 3]
    assert sched.now == 3.0


@pytest.mark.parametrize("backend", sorted(SCHEDULER_BACKENDS))
def test_step_returns_false_when_empty(backend):
    sched = make_scheduler(backend)
    assert sched.step() is False
    sched.schedule(1.0, lambda: None)
    assert sched.step() is True
    assert sched.step() is False


def test_event_repr_shows_time_and_state():
    sched = EventScheduler()
    event = sched.schedule(1.5, sched.run)
    assert "1.5" in repr(event) and "pending" in repr(event)
    event.cancel()
    assert "cancelled" in repr(event)


def test_max_events_bounds_execution():
    sched = EventScheduler()
    fired = []

    def loop():
        fired.append(sched.now)
        sched.schedule(1.0, loop)

    sched.schedule(0.0, loop)
    sched.run(max_events=5)
    assert len(fired) == 5


@pytest.mark.parametrize("backend", sorted(SCHEDULER_BACKENDS))
def test_max_events_counts_dispatched_not_drained(backend):
    # Regression: ``run(max_events=N)`` bounds *dispatched callbacks*.
    # Cancelled events drained from the queue on the way must not eat
    # into the budget (the old loop counted every pop, so a burst of
    # cancellations could stall a bounded run before it fired anything).
    sched = make_scheduler(backend)
    fired = []
    doomed = [sched.schedule(0.5, fired.append, "dead") for _ in range(5)]
    for event in doomed:
        event.cancel()
    sched.schedule(1.0, fired.append, "a")
    sched.schedule(2.0, fired.append, "b")
    sched.schedule(3.0, fired.append, "c")
    sched.run(max_events=2)
    assert fired == ["a", "b"]
    assert sched.now == 2.0


@pytest.mark.parametrize("backend", sorted(SCHEDULER_BACKENDS))
def test_max_events_zero_fires_nothing(backend):
    sched = make_scheduler(backend)
    fired = []
    sched.schedule(1.0, fired.append, "x")
    sched.run(max_events=0)
    assert fired == []
    assert sched.pending_count() == 1


def test_peek_time_skips_cancelled():
    sched = EventScheduler()
    first = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    first.cancel()
    assert sched.peek_time() == 2.0


def test_pending_count_excludes_cancelled():
    sched = EventScheduler()
    keep = sched.schedule(1.0, lambda: None)
    drop = sched.schedule(2.0, lambda: None)
    drop.cancel()
    assert sched.pending_count() == 1
    keep.cancel()
    assert sched.pending_count() == 0


def test_zero_delay_event_fires_at_now():
    sched = EventScheduler()
    fired = []
    sched.schedule(1.0, lambda: sched.schedule(0.0, fired.append, sched.now))
    sched.run()
    assert fired == [1.0]


def test_epoch_increments_once_per_dispatched_event():
    sched = EventScheduler()
    seen = []
    for _ in range(3):
        sched.schedule(1.0, lambda: seen.append(sched.epoch))
    assert sched.epoch == 0
    sched.run()
    # Incremented *before* each callback: every event sees a distinct
    # value and no two events share one (the spatial index keys on this).
    assert seen == [1, 2, 3]
    assert sched.epoch == 3


def test_epoch_skips_cancelled_events():
    sched = EventScheduler()
    fired = []
    sched.schedule(1.0, fired.append, "a")
    dropped = sched.schedule(2.0, fired.append, "b")
    sched.schedule(3.0, fired.append, "c")
    dropped.cancel()
    sched.run()
    assert fired == ["a", "c"]
    assert sched.epoch == 2


def test_simulator_exposes_event_epoch():
    from repro.sim import Simulator

    sim = Simulator(seed=1)
    seen = []
    sim.schedule(0.5, lambda: seen.append(sim.event_epoch))
    sim.schedule(0.5, lambda: seen.append(sim.event_epoch))
    sim.run(until=1.0)
    assert seen == [1, 2]  # same time, distinct epochs
