"""Reproducibility: identical seeds must give bit-identical results across
all protocols — the property the multi-trial statistics rely on."""

import pytest

from repro import ScenarioConfig, run_scenario


@pytest.mark.parametrize("protocol", ["ldr", "aodv", "dsr", "olsr"])
def test_runs_are_deterministic(protocol):
    config = ScenarioConfig(protocol=protocol, num_nodes=15, width=900.0,
                            height=300.0, num_flows=3, duration=15.0,
                            pause_time=0.0, seed=13)
    first = run_scenario(config).as_dict()
    second = run_scenario(config).as_dict()
    assert first == second


def test_seed_changes_results():
    base = ScenarioConfig(protocol="ldr", num_nodes=15, width=900.0,
                          height=300.0, num_flows=3, duration=15.0,
                          pause_time=0.0, seed=13)
    a = run_scenario(base).as_dict()
    b = run_scenario(base.replaced(seed=14)).as_dict()
    assert a != b


def test_protocol_choice_does_not_perturb_workload():
    """Changing the protocol must not change mobility or traffic."""
    from repro.experiments import build_scenario

    ldr = build_scenario(ScenarioConfig(protocol="ldr", num_nodes=12,
                                        num_flows=3, duration=10.0, seed=9))
    olsr = build_scenario(ScenarioConfig(protocol="olsr", num_nodes=12,
                                         num_flows=3, duration=10.0, seed=9))
    assert [
        (f.src, f.dst, f.start, f.end) for f in ldr.traffic.flows
    ] == [(f.src, f.dst, f.start, f.end) for f in olsr.traffic.flows]
    for node in range(12):
        assert ldr.mobility.position(node, 7.3) == olsr.mobility.position(node, 7.3)
