"""Cross-module integration: every protocol on realistic scenarios."""

import pytest

from repro import ScenarioConfig, run_scenario
from repro.core import LdrProtocol
from repro.mobility import StaticPlacement
from repro.protocols import AodvProtocol, DsrProtocol, OlsrProtocol
from tests.conftest import Network

ON_DEMAND = [LdrProtocol, AodvProtocol, DsrProtocol]
ALL_PROTOCOLS = ON_DEMAND + [OlsrProtocol]


@pytest.mark.parametrize("protocol_cls", ALL_PROTOCOLS,
                         ids=lambda c: c.name)
def test_grid_delivery_static(protocol_cls):
    net = Network(protocol_cls, StaticPlacement.grid(4, 4, 200.0), seed=11)
    net.run(12.0)  # lets OLSR converge; harmless for on-demand
    for src, dst in ((0, 15), (12, 3), (5, 10)):
        net.send(src, dst)
    net.run(5.0)
    for dst in (15, 3, 10):
        assert len(net.delivered_to(dst)) == 1, protocol_cls.name


@pytest.mark.parametrize("protocol_cls", ON_DEMAND, ids=lambda c: c.name)
def test_on_demand_protocols_are_quiet_without_traffic(protocol_cls):
    net = Network(protocol_cls, StaticPlacement.grid(3, 3, 200.0), seed=1)
    net.run(10.0)
    assert sum(net.metrics.control_transmissions.values()) == 0


def test_olsr_beacons_without_traffic():
    net = Network(OlsrProtocol, StaticPlacement.grid(3, 3, 200.0), seed=1)
    net.run(10.0)
    assert net.metrics.control_transmissions["hello"] > 0


@pytest.mark.parametrize("protocol", ["ldr", "aodv", "dsr", "olsr"])
def test_mobile_scenario_delivers_most_packets(protocol):
    report = run_scenario(ScenarioConfig(
        protocol=protocol, num_nodes=25, width=1000.0, height=300.0,
        num_flows=4, duration=40.0, pause_time=0.0, seed=17,
    ))
    d = report.as_dict()
    assert d["data_originated"] > 100
    # Even DSR/OLSR should clear a low bar on this mild scenario.
    floor = 0.45 if protocol == "olsr" else 0.6
    assert d["delivery_ratio"] >= floor, (protocol, d["delivery_ratio"])


def test_ldr_beats_or_matches_others_on_churny_network():
    """The headline comparison, miniaturized: LDR's delivery is at least
    competitive under mobility."""
    results = {}
    for protocol in ("ldr", "aodv", "dsr"):
        report = run_scenario(ScenarioConfig(
            protocol=protocol, num_nodes=25, width=1200.0, height=300.0,
            num_flows=6, duration=40.0, pause_time=0.0, seed=23,
        ))
        results[protocol] = report.delivery_ratio
    assert results["ldr"] >= results["dsr"] - 0.05
    assert results["ldr"] >= results["aodv"] - 0.10


def test_ldr_seqno_growth_far_below_aodv():
    """Figure 7's shape: destination sequence numbers stay near zero for
    LDR and grow with churn for AODV."""
    seqnos = {}
    for protocol in ("ldr", "aodv"):
        report = run_scenario(ScenarioConfig(
            protocol=protocol, num_nodes=25, width=1200.0, height=300.0,
            num_flows=6, duration=40.0, pause_time=0.0, seed=29,
        ))
        seqnos[protocol] = report.mean_destination_seqno
    assert seqnos["aodv"] > seqnos["ldr"]


def test_metrics_accounting_consistency():
    report = run_scenario(ScenarioConfig(
        protocol="ldr", num_nodes=15, width=800.0, height=300.0,
        num_flows=3, duration=20.0, pause_time=0.0, seed=31,
    ))
    c = report.c
    assert c.data_delivered <= c.data_originated
    assert c.data_delivered + sum(c.data_dropped.values()) <= c.data_originated + 1
    assert report.mean_hops >= 1.0 or c.data_delivered == 0
