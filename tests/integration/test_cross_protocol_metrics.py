"""Cross-protocol metric sanity on a single shared workload."""

import pytest

from repro import ScenarioConfig, run_scenario

BASE = dict(num_nodes=20, width=900.0, height=300.0, num_flows=3,
            duration=25.0, pause_time=0.0, seed=41)


@pytest.fixture(scope="module")
def reports():
    out = {}
    for protocol in ("oracle", "ldr", "aodv", "dsr", "olsr"):
        out[protocol] = run_scenario(
            ScenarioConfig(protocol=protocol, **BASE))
    return out


def test_oracle_dominates_delivery(reports):
    ceiling = reports["oracle"].delivery_ratio
    for name, report in reports.items():
        assert report.delivery_ratio <= ceiling + 1e-9, name


def test_oracle_has_zero_control_cost(reports):
    assert reports["oracle"].network_load == 0.0


def test_on_demand_protocols_discover_lazily(reports):
    # On-demand protocols only pay per discovery; OLSR beacons constantly.
    for name in ("ldr", "aodv", "dsr"):
        assert reports[name].c.control_transmissions.get("hello", 0) == 0
    assert reports["olsr"].c.control_transmissions["hello"] > 0


def test_mean_hops_close_to_oracle_paths(reports):
    oracle_hops = reports["oracle"].mean_hops
    for name in ("ldr", "aodv", "dsr"):
        report = reports[name]
        if report.c.data_delivered:
            # On-demand paths are discovered by flooding, so at most a few
            # hops longer than the true shortest paths on average.
            assert report.mean_hops <= oracle_hops + 2.0, name


def test_latency_ordering_olsr_fastest_forwarding(reports):
    """OLSR (no discovery latency) has the lowest mean latency — the
    paper's Table-1 observation."""
    olsr = reports["olsr"].mean_latency
    for name in ("ldr", "aodv", "dsr"):
        assert olsr <= reports[name].mean_latency + 1e-6, name


def test_seqno_only_meaningful_for_ldr_and_aodv(reports):
    assert reports["aodv"].mean_destination_seqno > 0
    assert reports["dsr"].mean_destination_seqno == 0.0
    assert reports["olsr"].mean_destination_seqno == 0.0
