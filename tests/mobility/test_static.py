"""Unit tests for static placement topologies."""

import math

from repro.mobility import StaticPlacement


def test_positions_are_time_invariant():
    placement = StaticPlacement({0: (1.0, 2.0)})
    assert placement.position(0, 0.0) == (1.0, 2.0)
    assert placement.position(0, 999.0) == (1.0, 2.0)


def test_line_topology_spacing():
    placement = StaticPlacement.line(4, spacing=100.0)
    assert placement.node_ids() == [0, 1, 2, 3]
    for i in range(4):
        assert placement.position(i, 0) == (i * 100.0, 0.0)


def test_grid_topology_ids_and_positions():
    placement = StaticPlacement.grid(2, 3, spacing=50.0)
    assert len(placement.node_ids()) == 6
    assert placement.position(0, 0) == (0.0, 0.0)
    assert placement.position(5, 0) == (100.0, 50.0)  # row 1, col 2


def test_star_topology_radius():
    placement = StaticPlacement.star(6, radius=200.0)
    assert placement.position(0, 0) == (0.0, 0.0)
    for leaf in range(1, 7):
        x, y = placement.position(leaf, 0)
        assert math.isclose(math.hypot(x, y), 200.0, rel_tol=1e-9)


def test_move_teleports_node():
    placement = StaticPlacement.line(2)
    placement.move(1, 999.0, 0.0)
    assert placement.position(1, 0) == (999.0, 0.0)
