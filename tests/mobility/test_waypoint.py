"""Unit and property tests for random-waypoint mobility."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility import RandomWaypoint
from repro.sim.rng import RngStreams


def _model(pause=0.0, seed=1, duration=100.0, max_speed=20.0):
    return RandomWaypoint(
        num_nodes=5, width=1000.0, height=300.0, min_speed=1.0,
        max_speed=max_speed, pause_time=pause, duration=duration,
        rng=random.Random(seed),
    )


def test_positions_stay_in_terrain():
    model = _model()
    for node in range(5):
        for t in range(0, 100, 3):
            x, y = model.position(node, float(t))
            assert -1e-9 <= x <= 1000.0 + 1e-9
            assert -1e-9 <= y <= 300.0 + 1e-9


def test_deterministic_given_seed():
    a, b = _model(seed=7), _model(seed=7)
    for t in (0.0, 12.3, 77.7):
        assert a.position(2, t) == b.position(2, t)


def test_different_seeds_differ():
    a, b = _model(seed=1), _model(seed=2)
    assert a.position(0, 50.0) != b.position(0, 50.0)


def test_speed_bounded_by_max_speed():
    model = _model(max_speed=20.0)
    dt = 0.5
    for node in range(5):
        prev = model.position(node, 0.0)
        for step in range(1, 200):
            cur = model.position(node, step * dt)
            dist = math.hypot(cur[0] - prev[0], cur[1] - prev[1])
            assert dist <= 20.0 * dt + 1e-6
            prev = cur


def test_initial_pause_holds_position():
    model = _model(pause=10.0)
    start = model.position(0, 0.0)
    assert model.position(0, 5.0) == start
    assert model.position(0, 9.99) == start


def test_zero_pause_moves_immediately():
    model = _model(pause=0.0)
    start = model.position(0, 0.0)
    assert model.position(0, 5.0) != start


def test_node_ids():
    assert _model().node_ids() == [0, 1, 2, 3, 4]


def test_position_beyond_duration_is_defined():
    model = _model(duration=50.0)
    x, y = model.position(0, 500.0)
    assert 0.0 <= x <= 1000.0
    assert 0.0 <= y <= 300.0


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    pause=st.floats(0.0, 50.0),
    t=st.floats(0.0, 100.0),
)
def test_property_positions_always_in_bounds(seed, pause, t):
    model = _model(pause=pause, seed=seed)
    for node in range(5):
        x, y = model.position(node, t)
        assert -1e-9 <= x <= 1000.0 + 1e-9
        assert -1e-9 <= y <= 300.0 + 1e-9


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), t=st.floats(0.0, 99.0))
def test_property_continuity(seed, t):
    """Positions move at most max_speed * dt between nearby times."""
    model = _model(seed=seed)
    dt = 0.25
    for node in range(3):
        ax, ay = model.position(node, t)
        bx, by = model.position(node, t + dt)
        assert math.hypot(bx - ax, by - ay) <= 20.0 * dt + 1e-6


def test_rng_is_mandatory():
    # An implicit default rng would let two scenarios silently share
    # identical mobility; construction without one must fail loudly.
    with pytest.raises(TypeError, match="explicit rng"):
        RandomWaypoint(num_nodes=2, width=100.0, height=100.0)


def test_accepts_rng_streams_and_draws_the_mobility_stream():
    streams = RngStreams(seed=42)
    via_streams = RandomWaypoint(
        num_nodes=3, width=1000.0, height=300.0, duration=50.0, rng=streams
    )
    direct = RandomWaypoint(
        num_nodes=3, width=1000.0, height=300.0, duration=50.0,
        rng=RngStreams(seed=42).stream("mobility"),
    )
    for node in range(3):
        for t in (0.0, 10.0, 25.0, 49.0):
            assert via_streams.position(node, t) == direct.position(node, t)


def test_scenarios_with_different_seeds_get_different_mobility():
    a = RandomWaypoint(num_nodes=2, width=1000.0, height=300.0,
                       duration=50.0, rng=RngStreams(seed=1))
    b = RandomWaypoint(num_nodes=2, width=1000.0, height=300.0,
                       duration=50.0, rng=RngStreams(seed=2))
    assert a.position(0, 25.0) != b.position(0, 25.0)
