"""Unit tests for the metrics collector."""

from repro.metrics import MetricsCollector
from repro.net.packet import DataPacket, Frame, Packet
from repro.sim import Simulator


class _Ctrl(Packet):
    kind = "rreq"


def _data(created_at=0.0):
    return DataPacket(src=0, dst=1, size_bytes=512, flow_id=0, seq=0,
                      created_at=created_at)


def test_data_counters_and_latency():
    sim = Simulator()
    collector = MetricsCollector(sim)
    packet = _data(created_at=0.0)
    collector.on_data_originated(0, packet)
    sim.scheduler._now = 0.5  # advance clock directly for the unit test
    collector.on_data_delivered(1, packet)
    assert collector.data_originated == 1
    assert collector.data_delivered == 1
    assert collector.latency_sum == 0.5


def test_duplicate_delivery_counted_once():
    collector = MetricsCollector(Simulator())
    packet = _data()
    collector.on_data_delivered(1, packet)
    collector.on_data_delivered(1, packet)
    assert collector.data_delivered == 1
    assert collector.duplicate_delivered == 1


def test_transmit_separates_control_and_data():
    collector = MetricsCollector()
    collector.on_transmit(0, _data())
    collector.on_transmit(0, _Ctrl())
    collector.on_transmit(0, _Ctrl(), retry=True)
    assert collector.data_transmissions == 1
    assert collector.control_transmissions["rreq"] == 2
    assert collector.mac_retries == 1


def test_control_initiated_by_kind():
    collector = MetricsCollector()
    collector.on_control_initiated(0, _Ctrl())
    assert collector.control_initiated["rreq"] == 1


def test_drop_reasons_tallied():
    collector = MetricsCollector()
    collector.on_data_dropped(0, _data(), "no_route")
    collector.on_data_dropped(0, _data(), "no_route")
    collector.on_data_dropped(0, _data(), "hop_limit")
    assert collector.data_dropped["no_route"] == 2
    assert collector.data_dropped["hop_limit"] == 1


def test_mac_events():
    collector = MetricsCollector()
    frame = Frame(_data(), 0, 1)
    collector.on_mac_receive(1, frame)
    collector.on_queue_drop(0, frame.packet)
    collector.on_mac_give_up(0, frame.packet)
    assert collector.mac_receptions == 1
    assert collector.queue_drops == 1
    assert collector.mac_give_ups == 1


def test_usable_rrep_and_seqno_observations():
    collector = MetricsCollector()
    collector.on_usable_rrep(3)
    collector.on_usable_rrep(4)
    collector.observe_final_seqno(9, 12)
    assert collector.usable_rreps_received == 2
    assert collector.seqno_final == {9: 12}
