"""Unit tests for derived run metrics."""

from repro.metrics import MetricsCollector, RunReport
from repro.net.packet import Packet


class _Rreq(Packet):
    kind = "rreq"


class _Rrep(Packet):
    kind = "rrep"


def test_empty_run_is_all_zeros():
    report = RunReport(MetricsCollector())
    d = report.as_dict()
    assert d["delivery_ratio"] == 0.0
    assert d["mean_latency"] == 0.0
    assert d["network_load"] == 0.0
    assert d["rreq_load"] == 0.0
    assert d["rrep_init_per_rreq"] == 0.0
    assert d["mean_destination_seqno"] == 0.0


def test_delivery_ratio():
    c = MetricsCollector()
    c.data_originated = 10
    c.data_delivered = 7
    assert RunReport(c).delivery_ratio == 0.7


def test_latency_and_hops_means():
    c = MetricsCollector()
    c.data_delivered = 4
    c.latency_sum = 2.0
    c.hop_sum = 12
    report = RunReport(c)
    assert report.mean_latency == 0.5
    assert report.mean_hops == 3.0


def test_network_and_rreq_load():
    c = MetricsCollector()
    c.data_delivered = 5
    c.control_transmissions["rreq"] = 10
    c.control_transmissions["rrep"] = 5
    report = RunReport(c)
    assert report.network_load == 3.0
    assert report.rreq_load == 2.0


def test_rrep_ratios():
    c = MetricsCollector()
    c.control_initiated["rreq"] = 4
    c.control_initiated["rrep"] = 6
    c.usable_rreps_received = 10
    report = RunReport(c)
    assert report.rrep_init_per_rreq == 1.5
    assert report.rrep_recv_per_rreq == 2.5


def test_mean_destination_seqno():
    c = MetricsCollector()
    c.seqno_final = {1: 2, 2: 4}
    assert RunReport(c).mean_destination_seqno == 3.0


def test_network_load_with_zero_delivered_counts_raw():
    c = MetricsCollector()
    c.control_transmissions["hello"] = 7
    assert RunReport(c).network_load == 7.0
