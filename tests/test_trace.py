"""Tests for the trace recorder (and the deprecated ``repro.trace`` shim)."""

import importlib
import sys

import pytest

from repro.experiments import ScenarioConfig, build_scenario
from repro.obs import TraceRecorder


def _traced_scenario(**overrides):
    base = dict(protocol="ldr", num_nodes=10, width=800.0, height=300.0,
                num_flows=2, duration=8.0, pause_time=0.0, seed=4)
    base.update(overrides)
    scenario = build_scenario(ScenarioConfig(**base))
    trace = TraceRecorder(scenario.sim).install(scenario)
    return scenario, trace


def test_records_transmissions_and_deliveries():
    scenario, trace = _traced_scenario()
    scenario.run()
    assert trace.select(kind="tx")
    assert trace.select(kind="deliver")
    assert trace.select(kind="route")


def test_events_are_time_ordered():
    scenario, trace = _traced_scenario()
    scenario.run()
    times = [e.time for e in trace.events]
    assert times == sorted(times)


def test_select_filters_by_kind_and_node():
    scenario, trace = _traced_scenario()
    scenario.run()
    node = trace.select(kind="tx")[0].node
    for event in trace.select(kind="tx", node=node):
        assert event.kind == "tx"
        assert event.node == node


def test_select_filters_by_time_window():
    scenario, trace = _traced_scenario()
    scenario.run()
    for event in trace.select(after=2.0, before=4.0):
        assert 2.0 <= event.time <= 4.0


def test_summary_and_format_render():
    scenario, trace = _traced_scenario()
    scenario.run()
    summary = trace.summary()
    assert "tx" in summary
    text = trace.format(limit=5, kind="tx")
    assert text.count("\n") <= 5


def test_max_events_truncates():
    scenario, trace = _traced_scenario()
    trace.max_events = 10
    scenario.run()
    assert len(trace.events) == 10
    assert trace.truncated


def test_loop_checker_still_runs_when_traced():
    """The recorder chains, not replaces, existing table-change hooks."""
    scenario, trace = _traced_scenario(loop_check=True)
    # install() ran after the loop checker; chaining must preserve it.
    scenario.run()
    assert scenario.loop_checker.checks_run > 0
    assert trace.select(kind="route")


def test_legacy_import_path_warns_and_still_works():
    """``repro.trace`` stays importable but announces its retirement."""
    sys.modules.pop("repro.trace", None)
    with pytest.warns(DeprecationWarning, match="repro.obs"):
        legacy = importlib.import_module("repro.trace")
    assert legacy.TraceRecorder is TraceRecorder
