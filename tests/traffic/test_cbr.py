"""Unit tests for CBR traffic generation."""

from repro.sim import Simulator
from repro.traffic import CbrFlow, TrafficGenerator


class _FakeNode:
    def __init__(self, node_id):
        self.node_id = node_id
        self.sent = []

    def send_data(self, dst, size_bytes=512, flow_id=0, seq=0):
        self.sent.append((dst, size_bytes, flow_id, seq))


def _nodes(count):
    return {i: _FakeNode(i) for i in range(count)}


def test_flow_sends_at_rate():
    sim = Simulator()
    nodes = _nodes(2)
    CbrFlow(sim, nodes, src=0, dst=1, rate=4.0, start=0.0, end=10.0)
    sim.run(until=20.0)
    # 4 pps for 10 s = 40 packets (first at t=0, last before t=10).
    assert len(nodes[0].sent) == 40


def test_flow_packet_sequence_numbers_increment():
    sim = Simulator()
    nodes = _nodes(2)
    CbrFlow(sim, nodes, src=0, dst=1, rate=2.0, start=0.0, end=3.0)
    sim.run(until=10.0)
    seqs = [seq for (_, _, _, seq) in nodes[0].sent]
    assert seqs == list(range(len(seqs)))


def test_flow_respects_start_time():
    sim = Simulator()
    nodes = _nodes(2)
    CbrFlow(sim, nodes, src=0, dst=1, rate=1.0, start=5.0, end=8.0)
    sim.run(until=4.0)
    assert nodes[0].sent == []
    sim.run(until=20.0)
    assert len(nodes[0].sent) == 3


def test_flow_stop():
    sim = Simulator()
    nodes = _nodes(2)
    flow = CbrFlow(sim, nodes, src=0, dst=1, rate=1.0, start=0.0, end=100.0)
    sim.schedule(2.5, flow.stop)
    sim.run(until=50.0)
    assert len(nodes[0].sent) == 3  # t = 0, 1, 2


def test_flow_on_finish_called():
    sim = Simulator()
    nodes = _nodes(2)
    finished = []
    flow = CbrFlow(sim, nodes, src=0, dst=1, rate=1.0, start=0.0, end=2.0)
    flow.on_finish = finished.append
    sim.run(until=10.0)
    assert finished == [flow]


def test_generator_keeps_flow_count():
    sim = Simulator(seed=3)
    nodes = _nodes(10)
    gen = TrafficGenerator(sim, nodes, num_flows=4, rate=2.0,
                           mean_flow_length=5.0, duration=60.0)
    sim.run(until=60.0)
    # Short flows (mean 5 s over 60 s) force many replacements.
    assert len(gen.flows) > 4
    total_sent = sum(len(n.sent) for n in nodes.values())
    assert total_sent > 0


def test_generator_never_self_flows():
    sim = Simulator(seed=3)
    nodes = _nodes(5)
    gen = TrafficGenerator(sim, nodes, num_flows=8, mean_flow_length=3.0,
                           duration=40.0)
    sim.run(until=40.0)
    assert all(f.src != f.dst for f in gen.flows)


def test_destinations_used_covers_all_flows():
    sim = Simulator(seed=3)
    nodes = _nodes(6)
    gen = TrafficGenerator(sim, nodes, num_flows=3, duration=20.0)
    sim.run(until=20.0)
    assert gen.destinations_used() == set(f.dst for f in gen.flows)


def test_generator_is_deterministic_per_seed():
    def pairs(seed):
        sim = Simulator(seed=seed)
        nodes = _nodes(8)
        gen = TrafficGenerator(sim, nodes, num_flows=3, duration=30.0,
                               mean_flow_length=5.0)
        sim.run(until=30.0)
        return [(f.src, f.dst, f.start) for f in gen.flows]

    assert pairs(11) == pairs(11)
    assert pairs(11) != pairs(12)
