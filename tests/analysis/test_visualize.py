"""Tests for the ASCII visualizer."""

from repro.analysis.visualize import ascii_topology, route_string
from repro.core import LdrProtocol
from repro.mobility import StaticPlacement
from tests.conftest import Network


def test_ascii_topology_places_all_nodes():
    placement = StaticPlacement({0: (0, 0), 1: (500, 0), 2: (1000, 300)})
    art = ascii_topology(placement, width=40, height=10)
    assert "0" in art
    assert "1" in art
    assert "2" in art
    assert "t=0.0s" in art


def test_ascii_topology_marks_route_and_collisions():
    placement = StaticPlacement({0: (0, 0), 1: (0, 0), 2: (100, 100)})
    art = ascii_topology(placement, route=[2])
    assert "*" in art  # nodes 0 and 1 collide on one cell
    assert "#" in art  # node 2 drawn as route member


def test_ascii_topology_dimensions():
    placement = StaticPlacement.grid(3, 3, 100.0)
    art = ascii_topology(placement, width=30, height=8)
    lines = art.split("\n")
    assert len(lines) == 9  # 8 rows + legend
    assert all(len(line) == 30 for line in lines[:-1])


def test_route_string_follows_successors():
    net = Network(LdrProtocol, StaticPlacement.line(4, 200.0))
    net.send(0, 3)
    net.run(3.0)
    assert route_string(net.protocols, 0, 3) == [0, 1, 2, 3]


def test_route_string_dead_end():
    net = Network(LdrProtocol, StaticPlacement.line(3, 200.0))
    # No discovery ran: node 0 has no successor for 2.
    assert route_string(net.protocols, 0, 2) == [0, "!"]
