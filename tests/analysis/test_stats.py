"""Unit tests for mean/CI helpers."""

import math

import numpy as np
from scipy import stats as scipy_stats

from repro.analysis import Aggregate, mean_confidence_interval


def test_empty_values():
    assert mean_confidence_interval([]) == (0.0, 0.0)


def test_single_value_has_zero_ci():
    mean, ci = mean_confidence_interval([3.5])
    assert mean == 3.5
    assert ci == 0.0


def test_matches_scipy_reference():
    values = [0.91, 0.95, 0.89, 0.94, 0.92]
    mean, ci = mean_confidence_interval(values)
    ref_mean = np.mean(values)
    ref_sem = scipy_stats.sem(values)
    ref_ci = ref_sem * scipy_stats.t.ppf(0.975, len(values) - 1)
    assert math.isclose(mean, ref_mean, rel_tol=1e-12)
    assert math.isclose(ci, ref_ci, rel_tol=1e-9)


def test_constant_values_zero_ci():
    mean, ci = mean_confidence_interval([2.0, 2.0, 2.0, 2.0])
    assert mean == 2.0
    assert ci == 0.0


def test_wider_confidence_wider_interval():
    values = [1.0, 2.0, 3.0, 4.0]
    _, ci95 = mean_confidence_interval(values, confidence=0.95)
    _, ci99 = mean_confidence_interval(values, confidence=0.99)
    assert ci99 > ci95


def test_aggregate_overlaps():
    tight_low = Aggregate([1.0, 1.01, 0.99])
    tight_high = Aggregate([2.0, 2.01, 1.99])
    wide = Aggregate([0.5, 2.5, 1.5])
    assert not tight_low.overlaps(tight_high)
    assert tight_low.overlaps(wide)
    assert wide.overlaps(tight_high)
    assert tight_low.overlaps(tight_low)


def test_aggregate_repr_contains_mean():
    assert "2" in repr(Aggregate([2.0, 2.0]))


def test_aggregate_zero_samples():
    agg = Aggregate([])
    assert agg.values == []
    assert agg.mean == 0.0
    assert agg.ci == 0.0
    assert agg.overlaps(agg)  # degenerate [0, 0] interval overlaps itself


def test_aggregate_one_sample():
    agg = Aggregate([0.75])
    assert agg.values == [0.75]
    assert agg.mean == 0.75
    assert agg.ci == 0.0  # no spread estimate from a single trial
    assert agg.overlaps(Aggregate([0.75]))
    assert not agg.overlaps(Aggregate([0.5]))


def test_overlaps_at_exactly_touching_endpoints():
    # [1, 3] and [3, 5]: hi_a == lo_b.  Touching counts as overlapping —
    # the paper's "statistically identical" reading is inclusive.
    left = Aggregate([2.0])
    left.ci = 1.0    # interval [1, 3]
    right = Aggregate([4.0])
    right.ci = 1.0   # interval [3, 5]
    assert left.overlaps(right)
    assert right.overlaps(left)
    # Move right's interval an epsilon away: no longer overlapping.
    right.mean = 4.0 + 1e-9
    assert not left.overlaps(right)
