"""Tests for the networkx-backed connectivity analysis."""

import random

from repro.analysis import (
    connectivity_ratio,
    pair_connected,
    partition_events,
    topology_graph,
)
from repro.mobility import RandomWaypoint, StaticPlacement


def test_topology_graph_edges_match_range():
    placement = StaticPlacement({0: (0, 0), 1: (200, 0), 2: (600, 0)})
    graph = topology_graph(placement, 0.0, transmission_range=275.0)
    assert graph.has_edge(0, 1)
    assert not graph.has_edge(0, 2)
    assert not graph.has_edge(1, 2)


def test_pair_connected_multihop():
    placement = StaticPlacement.line(4, 200.0)
    assert pair_connected(placement, 0, 3, 0.0)
    placement.move(2, 9000.0, 0.0)
    assert not pair_connected(placement, 0, 3, 0.0)


def test_connectivity_ratio_full_on_connected_static():
    placement = StaticPlacement.line(5, 200.0)
    assert connectivity_ratio(placement, duration=10.0, samples=5) == 1.0


def test_connectivity_ratio_partial_on_split():
    placement = StaticPlacement({0: (0, 0), 1: (200, 0),
                                 2: (9000, 0), 3: (9200, 0)})
    # Pairs: (0,1) and (2,3) connected; (0,2),(0,3),(1,2),(1,3) not: 2/6.
    ratio = connectivity_ratio(placement, duration=10.0, samples=3)
    assert abs(ratio - 2.0 / 6.0) < 1e-9


def test_connectivity_ratio_specific_pairs():
    placement = StaticPlacement({0: (0, 0), 1: (200, 0), 2: (9000, 0)})
    ratio = connectivity_ratio(placement, duration=1.0, samples=2,
                               pairs=[(0, 1)])
    assert ratio == 1.0


def test_partition_events_detects_intervals():
    mobility = RandomWaypoint(num_nodes=2, width=3000.0, height=300.0,
                              pause_time=0.0, duration=60.0,
                              rng=random.Random(5))
    events = partition_events(mobility, 60.0, 0, 1, resolution=2.0)
    for start, end in events:
        assert 0.0 <= start < end <= 60.0
        assert not pair_connected(mobility, 0, 1, (start + end) / 2)
