"""Run the doctests embedded in module docstrings."""

import doctest

import repro.sim.events


def test_events_doctests():
    results = doctest.testmod(repro.sim.events)
    assert results.failed == 0
    assert results.attempted > 0
