"""Corrupt cache entries and trace artifacts: miss + warning, never crash."""

import gzip
import json

from repro.exec.cache import ResultCache, trial_key
from repro.exec.engine import CampaignEngine
from repro.experiments.scenario import ScenarioConfig
from repro.obs import trace_ok


def _config(seed=1):
    return ScenarioConfig(num_nodes=8, num_flows=2, duration=5.0, seed=seed)


def _warm_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    config = _config()
    rows = CampaignEngine(cache=cache).run_rows([config])
    return cache, config, rows[0]


# -- cache entries -----------------------------------------------------


def test_truncated_json_entry_is_a_miss_with_warning(tmp_path):
    cache, config, row = _warm_cache(tmp_path)
    key = trial_key(config)
    path = cache._path(key)
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    got, note = cache.lookup(key)
    assert got is None
    assert "corrupt cache entry" in note
    assert "treating as a miss" in note


def test_wrong_shape_entry_is_a_miss_with_warning(tmp_path):
    cache, config, row = _warm_cache(tmp_path)
    key = trial_key(config)
    # Parseable JSON, but the row payload is not an object.
    cache._path(key).write_text(json.dumps({"key": key, "row": [1, 2]}))
    got, note = cache.lookup(key)
    assert got is None
    assert "corrupt cache entry" in note

    # Schema-shaped but missing the row entirely.
    cache._path(key).write_text(json.dumps({"key": key}))
    got, note = cache.lookup(key)
    assert got is None
    assert note is not None


def test_plain_miss_has_no_warning(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    got, note = cache.lookup("ab" * 32)
    assert got is None and note is None


def test_engine_reexecutes_corrupt_entry_and_warns(tmp_path):
    cache, config, row = _warm_cache(tmp_path)
    path = cache._path(trial_key(config))
    path.write_bytes(b'{"torn":')
    notes = []
    engine = CampaignEngine(
        cache=cache,
        progress=lambda p: notes.append(p.note) if p.note else None)
    result = engine.run([config])
    # Same bytes as the original row: corruption cost a re-execution,
    # not correctness — and it was loudly reported.
    assert result.rows() == [row]
    assert result.executed == 1 and result.cached == 0
    assert any("corrupt cache entry" in n for n in engine.warnings)
    assert any("corrupt cache entry" in n for n in notes)
    # The re-execution healed the cache in place.
    assert cache.get(trial_key(config)) == row


# -- trace artifacts ---------------------------------------------------


def _traced_engine(tmp_path, cache):
    return CampaignEngine(cache=cache, trace_dir=tmp_path / "traces")


def test_trace_ok_rejects_truncated_and_accepts_intact(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    config = _config()
    engine = _traced_engine(tmp_path, cache)
    result = engine.run([config])
    artifact = engine._trace_path(result.trials[0])
    ok, reason = trace_ok(artifact)
    assert ok and reason is None
    artifact.write_bytes(
        artifact.read_bytes()[: artifact.stat().st_size // 2])
    ok, reason = trace_ok(artifact)
    assert not ok and reason


def test_trace_ok_rejects_bad_gzip_payload(tmp_path):
    path = tmp_path / "x.trace.jsonl.gz"
    # Correct gzip magic, torn member: the reader must flag it, not raise.
    intact = gzip.compress(b'{"type":"header","schema":99}\n')
    path.write_bytes(intact[: len(intact) // 2])
    ok, reason = trace_ok(path)
    assert not ok and reason


def test_trace_ok_rejects_schema_mismatch(tmp_path):
    path = tmp_path / "x.trace.jsonl"
    path.write_text('{"type": "header", "schema": 9999}\n')
    ok, reason = trace_ok(path)
    assert not ok
    assert "schema" in reason


def test_engine_reexecutes_when_trace_artifact_is_torn(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    config = _config()
    engine = _traced_engine(tmp_path, cache)
    first = engine.run([config])
    artifact = engine._trace_path(first.trials[0])
    original = artifact.read_bytes()
    artifact.write_bytes(original[: len(original) // 2])

    engine = _traced_engine(tmp_path, cache)
    second = engine.run([config])
    # Cached row exists, but a torn artifact cannot certify it: the
    # trial re-executes and rewrites an identical artifact.
    assert second.executed == 1 and second.cached == 0
    assert any("corrupt trace artifact" in n for n in engine.warnings)
    assert second.rows() == first.rows()
    assert artifact.read_bytes() == original


def test_engine_serves_cache_when_trace_artifact_is_intact(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    config = _config()
    engine = _traced_engine(tmp_path, cache)
    engine.run([config])
    engine = _traced_engine(tmp_path, cache)
    again = engine.run([config])
    assert again.cached == 1 and again.executed == 0
    assert engine.warnings == []
