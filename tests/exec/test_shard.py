"""Shard plans: deterministic partition, meta registration, claim tokens."""

import json

import pytest

from repro.exec.cache import trial_key
from repro.exec.manifest import CampaignManifest, campaign_paths
from repro.exec.shard import (
    CLAIMDONE,
    CLAIMED,
    TODO,
    ShardPlan,
    ShardPlanError,
    campaign_fingerprint,
    claim_shard,
    claim_states,
    claims_dir,
    init_claims,
    reclaim_shard,
    release_shard,
    shard_dir,
    start_shard,
)
from repro.experiments.scenario import ScenarioConfig


def _configs(n=12):
    return [ScenarioConfig(num_nodes=8, num_flows=2, duration=5.0,
                           seed=1 + i) for i in range(n)]


# -- partition function ------------------------------------------------


@pytest.mark.parametrize("mode", ["hash", "range"])
def test_assignment_covers_every_config_exactly_once(mode):
    configs = _configs(12)
    plan = ShardPlan(3, mode)
    buckets = plan.assign(configs)
    assert len(buckets) == 3
    seen = sorted(i for bucket in buckets for i, _ in bucket)
    assert seen == list(range(12))
    # submission order preserved within each shard
    for bucket in buckets:
        indices = [i for i, _ in bucket]
        assert indices == sorted(indices)


@pytest.mark.parametrize("mode", ["hash", "range"])
def test_partition_is_a_pure_function_of_the_key(mode):
    """Two processes with the same plan must agree with no coordination."""
    configs = _configs(8)
    plan_a, plan_b = ShardPlan(4, mode), ShardPlan(4, mode)
    for config in configs:
        key = trial_key(config)
        assert plan_a.shard_of(key) == plan_b.shard_of(key)


def test_range_mode_respects_hash_intervals():
    plan = ShardPlan(4, "range")
    ranges = [plan.hash_range(i) for i in range(4)]
    # Contiguous, gap-free cover of the 64-bit space.
    assert ranges[0][0] == 0
    assert ranges[-1][1] == 1 << 64
    for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
        assert hi == lo
    for config in _configs(10):
        key = trial_key(config)
        prefix = int(key[:16], 16)
        lo, hi = ranges[plan.shard_of(key)]
        assert lo <= prefix < hi


def test_hash_range_rejected_in_hash_mode():
    with pytest.raises(ShardPlanError):
        ShardPlan(3, "hash").hash_range(0)


def test_single_shard_plan_owns_everything():
    plan = ShardPlan(1, "range")
    assert plan.hash_range(0) == (0, 1 << 64)
    for config in _configs(5):
        assert plan.shard_of(trial_key(config)) == 0


def test_plan_validation():
    with pytest.raises(ShardPlanError):
        ShardPlan(0)
    with pytest.raises(ShardPlanError):
        ShardPlan(2, "modulo")


def test_plan_round_trips_and_rejects_foreign_schema():
    plan = ShardPlan(5, "range")
    assert ShardPlan.from_dict(plan.to_dict()) == plan
    bad = dict(plan.to_dict(), schema=99)
    with pytest.raises(ShardPlanError):
        ShardPlan.from_dict(bad)
    with pytest.raises(ShardPlanError):
        ShardPlan.from_dict({"shards": 2})


def test_fingerprint_is_order_sensitive():
    keys = [trial_key(c) for c in _configs(3)]
    assert campaign_fingerprint(keys) == campaign_fingerprint(list(keys))
    assert campaign_fingerprint(keys) != \
        campaign_fingerprint(list(reversed(keys)))


# -- shard campaign directories ----------------------------------------


def test_start_shard_registers_plan_and_fingerprint(tmp_path):
    configs = _configs(6)
    plan = ShardPlan(2, "hash")
    manifest, engine, subset = start_shard(tmp_path, configs, plan, 0,
                                           name="unit")
    manifest.close()
    assert [c for _, c in subset] == \
        [c for i, c in plan.assign(configs)[0]]

    path, _, _ = campaign_paths(shard_dir(tmp_path, 0))
    loaded = CampaignManifest.load(path)
    shard_info = loaded.header["meta"]["shard"]
    assert shard_info["shards"] == 2
    assert shard_info["mode"] == "hash"
    assert shard_info["index"] == 0
    assert shard_info["total"] == 6
    assert shard_info["indices"] == [i for i, _ in subset]
    assert shard_info["fingerprint"] == campaign_fingerprint(
        [trial_key(c) for c in configs])


def test_start_shard_rejects_bad_index_and_restart(tmp_path):
    configs = _configs(4)
    plan = ShardPlan(2)
    with pytest.raises(ShardPlanError):
        start_shard(tmp_path, configs, plan, 2)
    manifest, _, _ = start_shard(tmp_path, configs, plan, 0)
    manifest.close()
    with pytest.raises(FileExistsError):
        start_shard(tmp_path, configs, plan, 0)


# -- claim tokens -------------------------------------------------------


def test_claim_lifecycle(tmp_path):
    plan = ShardPlan(3)
    assert init_claims(tmp_path, plan) == 3
    assert init_claims(tmp_path, plan) == 0  # idempotent
    assert claim_states(tmp_path, plan)[TODO] == [0, 1, 2]

    assert claim_shard(tmp_path, plan) == 0
    assert claim_shard(tmp_path, plan) == 1
    states = claim_states(tmp_path, plan)
    assert states[CLAIMED] == [0, 1] and states[TODO] == [2]

    assert release_shard(tmp_path, 0, done=True)
    assert release_shard(tmp_path, 1, done=False)  # hand back
    states = claim_states(tmp_path, plan)
    assert states[CLAIMDONE] == [0] and states[TODO] == [1, 2]

    # The handed-back shard is claimable again; done ones never are.
    assert claim_shard(tmp_path, plan) == 1
    assert release_shard(tmp_path, 1, done=True)
    assert claim_shard(tmp_path, plan) == 2
    assert release_shard(tmp_path, 2, done=True)
    assert claim_shard(tmp_path, plan) is None


def test_release_without_claim_reports_false(tmp_path):
    plan = ShardPlan(2)
    init_claims(tmp_path, plan)
    assert not release_shard(tmp_path, 0, done=True)  # never claimed
    assert not reclaim_shard(tmp_path, 0)


def test_reclaim_requeues_a_dead_claimants_shard(tmp_path):
    plan = ShardPlan(2)
    init_claims(tmp_path, plan)
    assert claim_shard(tmp_path, plan) == 0
    # claimant SIGKILLed: token stuck in .claimed, journal untouched
    assert reclaim_shard(tmp_path, 0)
    assert claim_states(tmp_path, plan)[TODO] == [0, 1]
    assert claim_shard(tmp_path, plan) == 0


def test_claim_token_records_the_plan(tmp_path):
    plan = ShardPlan(4, "range")
    init_claims(tmp_path, plan)
    token = claims_dir(tmp_path) / "shard-000.todo"
    recorded = json.loads(token.read_text().strip())
    assert ShardPlan.from_dict(recorded) == plan
