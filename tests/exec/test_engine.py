"""Engine behaviour: parity, caching, retry, timeout, progress."""

import pytest

from repro.exec import worker
from repro.exec.cache import ResultCache
from repro.exec.engine import CampaignEngine, CampaignError
from repro.experiments.scenario import ScenarioConfig
from repro.mobility import StaticPlacement


def _configs(n=3, **overrides):
    base = dict(num_nodes=8, num_flows=2, duration=5.0)
    base.update(overrides)
    return [ScenarioConfig(seed=1 + i, **base) for i in range(n)]


def test_serial_engine_matches_direct_run():
    from repro.experiments.scenario import run_scenario

    configs = _configs(2)
    rows = CampaignEngine().run_rows(configs)
    direct = [run_scenario(c).as_dict() for c in configs]
    assert rows == direct


def test_parallel_rows_bit_identical_to_serial():
    configs = _configs(4)
    serial = CampaignEngine().run_rows(configs)
    parallel = CampaignEngine(jobs=2).run_rows(configs)
    assert parallel == serial


def test_order_preserved_with_many_jobs():
    configs = _configs(5)
    result = CampaignEngine(jobs=4).run(configs)
    assert [t.index for t in result.trials] == list(range(5))
    assert [t.config.seed for t in result.trials] == [c.seed for c in configs]


def test_cache_replay_executes_nothing(tmp_path):
    configs = _configs(3)
    first = CampaignEngine(cache=ResultCache(tmp_path)).run(configs)
    assert first.executed == 3 and first.cached == 0
    second = CampaignEngine(cache=ResultCache(tmp_path)).run(configs)
    assert second.executed == 0 and second.cached == 3
    assert [t.row for t in second.trials] == [t.row for t in first.trials]


def test_cache_shared_between_serial_and_parallel(tmp_path):
    configs = _configs(3)
    serial = CampaignEngine(cache=ResultCache(tmp_path)).run(configs)
    parallel = CampaignEngine(jobs=2, cache=ResultCache(tmp_path)).run(configs)
    assert parallel.cached == 3
    assert [t.row for t in parallel.trials] == [t.row for t in serial.trials]


def test_failed_trial_surfaces_instead_of_raising(monkeypatch):
    def boom(config):
        raise RuntimeError("injected failure")

    monkeypatch.setattr(worker, "run_scenario", boom)
    result = CampaignEngine(retries=1).run(_configs(2))
    assert result.failed == 2
    for trial in result.trials:
        assert trial.attempts == 2  # first try + one retry
        assert "injected failure" in trial.error
    with pytest.raises(CampaignError) as err:
        result.rows()
    assert "injected failure" in str(err.value)


def test_transient_failure_recovers_via_retry(monkeypatch):
    real = worker.run_scenario
    calls = {"n": 0}

    def flaky(config):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient")
        return real(config)

    monkeypatch.setattr(worker, "run_scenario", flaky)
    result = CampaignEngine(retries=1).run(_configs(1))
    assert result.failed == 0
    assert result.trials[0].attempts == 2
    assert result.trials[0].ok


def test_zero_retries_fails_fast(monkeypatch):
    def boom(config):
        raise RuntimeError("no second chances")

    monkeypatch.setattr(worker, "run_scenario", boom)
    result = CampaignEngine(retries=0).run(_configs(1))
    assert result.trials[0].attempts == 1
    assert result.failed == 1


def test_per_trial_timeout_is_a_failure():
    # 60 simulated seconds of a 20-node network cannot finish in 10 ms.
    configs = _configs(1, num_nodes=20, duration=60.0)
    result = CampaignEngine(timeout=0.01, retries=0).run(configs)
    assert result.failed == 1
    assert "timed out" in result.trials[0].error


def test_unserializable_config_runs_in_process_uncached(tmp_path):
    placement = StaticPlacement({i: (100.0 * i, 0.0) for i in range(4)})
    config = ScenarioConfig(num_nodes=4, num_flows=1, duration=4.0,
                            mobility=placement)
    cache = ResultCache(tmp_path)
    result = CampaignEngine(jobs=2, cache=cache).run([config])
    assert result.trials[0].ok
    assert result.trials[0].key is None
    assert cache.stats()["entries"] == 0


def test_progress_callback_sees_final_counts(tmp_path):
    snapshots = []
    configs = _configs(3)
    CampaignEngine(cache=ResultCache(tmp_path),
                   progress=snapshots.append).run(configs)
    assert [s.done for s in snapshots] == [1, 2, 3]
    last = snapshots[-1]
    assert last.total == 3 and last.executed == 3 and last.failed == 0
    assert last.eta == 0.0
    snapshots.clear()
    CampaignEngine(cache=ResultCache(tmp_path),
                   progress=snapshots.append).run(configs)
    assert snapshots[-1].cached == 3


def test_run_trials_through_parallel_engine_matches_serial():
    from repro.experiments.runner import run_trials

    config = ScenarioConfig(num_nodes=8, num_flows=2, duration=5.0, seed=2)
    serial = run_trials(config, trials=3)
    parallel = run_trials(config, trials=3, engine=CampaignEngine(jobs=3))
    for key in serial:
        assert serial[key].values == parallel[key].values
        assert serial[key].mean == parallel[key].mean
