"""Acceptance test: a scaled campaign, parallel + cached vs. serial.

Mirrors ``repro table1 --jobs N``: the parallel run must produce metric
values bit-identical to the serial run, and a second invocation must be
served entirely from the cache with zero trials re-executed.
"""

from repro.experiments.campaigns import Campaign
from repro.experiments.tables import TABLE1_METRICS, table1


def _campaign(tmp_path, jobs, snapshots=None):
    return Campaign(
        duration=6.0, trials=2, num_nodes_small=10, num_nodes_large=12,
        jobs=jobs, use_cache=True, cache_dir=tmp_path / "cache",
        progress=None if snapshots is None else snapshots.append,
    )


def test_table1_parallel_cached_matches_serial(tmp_path):
    protocols = ("ldr", "aodv")

    serial = table1(2, campaign=Campaign(
        duration=6.0, trials=2, num_nodes_small=10, num_nodes_large=12,
    ), protocols=protocols)

    first_snaps = []
    parallel = table1(
        2, campaign=_campaign(tmp_path, jobs=4, snapshots=first_snaps),
        protocols=protocols,
    )
    # Bit-identical aggregates: every raw sample, mean, and CI.
    for protocol in protocols:
        for key, _ in TABLE1_METRICS:
            assert parallel[protocol][key].values == serial[protocol][key].values
            assert parallel[protocol][key].mean == serial[protocol][key].mean
            assert parallel[protocol][key].ci == serial[protocol][key].ci
    total = first_snaps[-1].total
    assert first_snaps[-1].executed == total and total > 0

    second_snaps = []
    replay = table1(
        2, campaign=_campaign(tmp_path, jobs=4, snapshots=second_snaps),
        protocols=protocols,
    )
    # Second invocation: zero trials re-executed, same numbers.
    assert second_snaps[-1].executed == 0
    assert second_snaps[-1].cached == total
    for protocol in protocols:
        for key, _ in TABLE1_METRICS:
            assert replay[protocol][key].values == serial[protocol][key].values
