"""Portable in-worker deadlines (the SIGALRM replacement)."""

import threading
import time

import repro.exec.deadline as deadline_mod
from repro.exec.deadline import TrialTimeout, call_with_deadline
from repro.exec.worker import run_trial_config
from repro.experiments.scenario import ScenarioConfig


def test_value_passes_through():
    assert call_with_deadline(lambda: 42, None) == {"ok": True, "value": 42}
    assert call_with_deadline(lambda: 42, 0) == {"ok": True, "value": 42}


def test_exception_is_captured_not_raised():
    def boom():
        raise RuntimeError("kaput")

    outcome = call_with_deadline(boom, None)
    assert outcome["ok"] is False
    assert "kaput" in outcome["error"]

    outcome = call_with_deadline(boom, 5.0)  # threaded path too
    assert outcome["ok"] is False
    assert "kaput" in outcome["error"]


def test_fast_function_beats_its_deadline():
    outcome = call_with_deadline(lambda: "fast", 5.0)
    assert outcome == {"ok": True, "value": "fast"}


def test_deadline_fires_and_returns_promptly():
    started = time.monotonic()
    outcome = call_with_deadline(lambda: time.sleep(30), 0.2)
    elapsed = time.monotonic() - started
    assert outcome["ok"] is False
    assert "timed out" in outcome["error"]
    # join(timeout) + cancel + grace, nowhere near the 30s sleep.
    assert elapsed < 10.0
    # A thread blocked inside a C call (sleep) cannot take the async
    # exception until the call returns, so the overrun is degraded
    # gracefully: reported on time, flagged as uncancelled.
    assert "may still be running" in outcome["warning"]


def test_timeout_is_cancellable_inside_pure_python_loops():
    cancelled = threading.Event()

    def spin():
        try:
            while True:
                sum(range(1000))
        except TrialTimeout:
            cancelled.set()
            raise

    outcome = call_with_deadline(spin, 0.2)
    assert outcome["ok"] is False
    assert cancelled.wait(5.0), "TrialTimeout never landed in the loop"


def test_trial_timeout_is_not_an_ordinary_exception():
    # Like KeyboardInterrupt: `except Exception` in trial code must not
    # be able to absorb the async-raised cancellation.
    assert issubclass(TrialTimeout, BaseException)
    assert not issubclass(TrialTimeout, Exception)


def test_broad_except_exception_cannot_swallow_cancellation():
    def stubborn():
        while True:
            try:
                sum(range(1000))
            except Exception:
                pass  # would eat an Exception-derived cancellation

    outcome = call_with_deadline(stubborn, 0.2)
    assert outcome["ok"] is False
    assert "timed out" in outcome["error"]
    # The cancellation escaped the broad handler and ended the thread.
    assert "warning" not in outcome


def test_uncancellable_overrun_carries_explicit_warning(monkeypatch):
    # Simulate a runtime without PyThreadState_SetAsyncExc (or a thread
    # wedged in C): the deadline must still report on time, flagged.
    monkeypatch.setattr(deadline_mod, "_async_raise", lambda ident: False)
    release = threading.Event()
    try:
        outcome = call_with_deadline(lambda: release.wait(30), 0.2)
        assert outcome["ok"] is False
        assert "timed out" in outcome["error"]
        assert "hard cancellation is unavailable" in outcome["warning"]
    finally:
        release.set()  # do not leak a 30s thread into other tests


def test_worker_timeout_surfaces_as_failed_outcome():
    config = ScenarioConfig(num_nodes=40, num_flows=10, duration=600.0,
                            seed=1)
    outcome = run_trial_config(config, timeout=0.2)
    assert outcome["ok"] is False
    assert "timed out" in outcome["error"]
    assert outcome["worker"] > 0
