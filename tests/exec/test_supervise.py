"""Retry policy: deterministic backoff, quarantine, retry identity."""

import json

import repro.exec.worker as worker_mod
from repro.exec.engine import CampaignEngine
from repro.exec.supervise import RetryPolicy, backoff_delay, stall_budget
from repro.experiments.scenario import ScenarioConfig


def _config(seed=1):
    return ScenarioConfig(num_nodes=8, num_flows=2, duration=5.0, seed=seed)


# -- backoff -----------------------------------------------------------


def test_backoff_is_deterministic_per_key_and_attempt():
    key = "ab" * 32
    for attempt in (2, 3, 4):
        assert backoff_delay(key, attempt, 0.1, 30.0) == \
            backoff_delay(key, attempt, 0.1, 30.0)
    # Different trials get different jitter (decorrelated retry storms).
    assert backoff_delay("ab" * 32, 2, 0.1, 30.0) != \
        backoff_delay("cd" * 32, 2, 0.1, 30.0)


def test_backoff_grows_exponentially_and_caps():
    key = "ef" * 32
    d2 = backoff_delay(key, 2, 0.1, 30.0)
    d5 = backoff_delay(key, 5, 0.1, 30.0)
    assert 0.075 <= d2 <= 0.125  # base * U[0.75, 1.25)
    assert d5 > d2  # 2^3 growth dwarfs jitter wiggle
    assert backoff_delay(key, 30, 0.1, 2.0) == 2.0  # cap wins eventually


def test_backoff_disabled_cases():
    assert backoff_delay("ab", 1, 0.1, 30.0) == 0.0  # first attempt
    assert backoff_delay("ab", 5, 0.0, 30.0) == 0.0  # base 0 = off
    assert backoff_delay(None, 5, 0.1, 30.0) >= 0.0  # keyless trials work


def test_stall_budget_derivation():
    assert stall_budget(None, None) is None  # can't tell slow from wedged
    assert stall_budget(10.0, None) == 50.0  # 2*deadline + slack
    assert stall_budget(10.0, 7.5) == 7.5  # explicit wins


# -- policy ------------------------------------------------------------


def test_retry_policy_classic_vs_quarantine_ceilings():
    classic = RetryPolicy(retries=2)
    assert classic.max_attempts == 3
    assert not classic.quarantines
    assert classic.exhausted(3) and not classic.exhausted(2)

    quarantine = RetryPolicy(retries=2, quarantine_after=5)
    assert quarantine.max_attempts == 5  # quarantine_after replaces retries
    assert quarantine.quarantines
    assert quarantine.exhausted(5) and not quarantine.exhausted(4)


def test_quarantine_reports_without_failing_the_campaign(monkeypatch):
    real = worker_mod.run_scenario

    def poisoned(config):
        if config.seed == 2:
            raise RuntimeError("poison trial")
        return real(config)

    monkeypatch.setattr(worker_mod, "run_scenario", poisoned)
    engine = CampaignEngine(quarantine_after=2, backoff_base=0.0)
    result = engine.run([_config(1), _config(2), _config(3)])
    assert result.failed == 0  # quarantine is not failure
    quarantined = result.quarantined()
    assert [t.index for t in quarantined] == [1]
    assert quarantined[0].attempts == 2
    assert "poison trial" in quarantined[0].error
    assert result.coverage == 2 / 3
    assert len(result.completed_rows()) == 2
    # Full-row access still refuses to paper over the gap.
    try:
        result.rows()
    except Exception as err:
        assert "quarantined" in str(err)
    else:  # pragma: no cover
        raise AssertionError("rows() must raise under quarantine")


def test_classic_exhaustion_still_fails_the_campaign(monkeypatch):
    def always_broken(config):
        raise RuntimeError("hard failure")

    monkeypatch.setattr(worker_mod, "run_scenario", always_broken)
    result = CampaignEngine(retries=1, backoff_base=0.0).run([_config(1)])
    assert result.failed == 1
    assert not result.quarantined()
    assert result.trials[0].attempts == 2


def test_retries_never_perturb_result_bytes(monkeypatch):
    """The 'exec' stream isolation contract, end to end.

    A trial that fails twice and succeeds on attempt 3 must produce the
    exact bytes of a trial that succeeded immediately: retry scheduling
    (jitter and all) draws only from the 'exec' stream, never from the
    scenario's seeded streams.
    """
    baseline = CampaignEngine().run([_config(7)]).rows()

    real = worker_mod.run_scenario
    calls = {"n": 0}

    def flaky(config):
        calls["n"] += 1
        if calls["n"] < 3:
            raise RuntimeError("transient")
        return real(config)

    monkeypatch.setattr(worker_mod, "run_scenario", flaky)
    retried = CampaignEngine(retries=2, backoff_base=0.001).run([_config(7)])
    assert retried.trials[0].attempts == 3
    assert json.dumps(retried.rows(), sort_keys=True) == \
        json.dumps(baseline, sort_keys=True)


def test_pool_quarantine_matches_local_quarantine(monkeypatch):
    """Quarantine accounting is identical in pool and local paths."""
    real = worker_mod.run_scenario

    def poisoned(config):
        if config.seed == 2:
            raise RuntimeError("poison trial")
        return real(config)

    monkeypatch.setattr(worker_mod, "run_scenario", poisoned)
    configs = [_config(1), _config(2), _config(3)]
    local = CampaignEngine(quarantine_after=2, backoff_base=0.0).run(configs)
    # jobs>1 exercises the pool loop; the monkeypatch only exists in this
    # process, so fake the pool breaking to force the supervised local
    # path — the accounting under test is the engine's, not the pool's.
    import repro.exec.engine as engine_mod
    from tests.exec.test_broken_pool import _ExplodingPool

    monkeypatch.setattr(engine_mod, "ProcessPoolExecutor", _ExplodingPool)
    pooled = CampaignEngine(jobs=2, quarantine_after=2,
                            backoff_base=0.0).run(configs)
    assert [t.quarantined for t in pooled.trials] == \
        [t.quarantined for t in local.trials]
    assert [t.row for t in pooled.trials] == [t.row for t in local.trials]
