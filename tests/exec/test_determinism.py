"""Determinism regression: identical results in-process and in workers.

The cache key scheme and the parallel execution path are both only sound
if a ``(ScenarioConfig, seed)`` trial is a pure function of its config —
the same ``RunReport.as_dict()`` whether the trial runs in this
interpreter, in a forked worker, or in a freshly spawned one.
"""

import multiprocessing
import os
import pathlib

import repro
from repro.exec import worker
from repro.exec.engine import CampaignEngine
from repro.experiments.scenario import ScenarioConfig, run_scenario


def _config(seed=7):
    return ScenarioConfig(protocol="ldr", num_nodes=10, num_flows=2,
                          duration=6.0, pause_time=1.0, seed=seed)


def _src_on_pythonpath(monkeypatch):
    """Make sure spawned interpreters can import ``repro``."""
    src = str(pathlib.Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        monkeypatch.setenv(
            "PYTHONPATH", src + (os.pathsep + existing if existing else "")
        )


def test_payload_roundtrip_matches_direct_run():
    config = _config()
    direct = run_scenario(config).as_dict()
    outcome = worker.run_trial_payload({"config": config.to_dict()})
    assert outcome["ok"]
    assert outcome["row"] == direct


def test_subprocess_worker_matches_in_process(monkeypatch):
    config = _config()
    in_process = worker.run_trial_payload({"config": config.to_dict()})
    _src_on_pythonpath(monkeypatch)
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(1) as pool:
        spawned = pool.apply(worker.run_trial_payload,
                             ({"config": config.to_dict()},))
    assert spawned["ok"] and in_process["ok"]
    assert spawned["row"] == in_process["row"]


def test_spawned_pool_engine_matches_serial(monkeypatch):
    configs = [_config(seed=s) for s in (1, 2, 3)]
    serial = CampaignEngine().run_rows(configs)
    _src_on_pythonpath(monkeypatch)
    spawned = CampaignEngine(jobs=2, mp_context="spawn").run_rows(configs)
    assert spawned == serial
