"""Graceful degradation when the process pool dies (BrokenProcessPool).

A worker that segfaults or gets OOM-killed takes the whole
``ProcessPoolExecutor`` down with it.  The engine must (a) finish every
unsettled trial in-process, (b) tell the user — through the progress
reporter and ``engine.warnings`` — that it degraded, and (c) not charge
the lost in-flight attempts against any trial's retry budget.
"""

from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import repro.exec.engine as engine_mod
from repro.exec import worker
from repro.exec.engine import CampaignEngine
from repro.experiments.scenario import ScenarioConfig


class _ExplodingPool:
    """Mimics a ProcessPoolExecutor whose workers all died at once."""

    def __init__(self, max_workers=None, mp_context=None):
        self.max_workers = max_workers

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def shutdown(self, wait=True, cancel_futures=False):
        pass

    def submit(self, fn, *args, **kwargs):
        future = Future()
        future.set_exception(BrokenProcessPool("worker died hard"))
        return future


def _configs(n=3):
    return [ScenarioConfig(num_nodes=8, num_flows=2, duration=5.0,
                           seed=1 + i) for i in range(n)]


def test_broken_pool_finishes_in_process_and_warns(monkeypatch):
    monkeypatch.setattr(engine_mod, "ProcessPoolExecutor", _ExplodingPool)
    snapshots = []
    engine = CampaignEngine(jobs=2, progress=snapshots.append)
    result = engine.run(_configs(3))
    assert result.failed == 0
    assert all(t.ok for t in result.trials)
    # The warning is user-visible both on the engine and in the stream
    # of progress snapshots (as a note that survives status overwrites).
    # The pool is respawned once before the engine degrades, so two
    # breakdown warnings are expected: respawn, then in-process fallback.
    assert len(engine.warnings) == 2
    assert "respawning pool" in engine.warnings[0]
    assert "finishing 3 trial(s) in-process" in engine.warnings[1]
    assert all("worker pool broke" in w for w in engine.warnings)
    notes = [s.note for s in snapshots if s.note]
    assert any("worker pool broke" in note for note in notes)


def test_broken_pool_rows_match_serial(monkeypatch):
    serial = CampaignEngine().run_rows(_configs(3))
    monkeypatch.setattr(engine_mod, "ProcessPoolExecutor", _ExplodingPool)
    degraded = CampaignEngine(jobs=4).run_rows(_configs(3))
    assert degraded == serial


def test_lost_pool_attempts_do_not_consume_retry_budget(monkeypatch):
    monkeypatch.setattr(engine_mod, "ProcessPoolExecutor", _ExplodingPool)
    real = worker.run_scenario
    failures = set()

    def flaky(config):
        # Every trial's FIRST in-process attempt fails; the retry lands.
        if config.seed not in failures:
            failures.add(config.seed)
            raise RuntimeError("transient post-breakdown failure")
        return real(config)

    monkeypatch.setattr(worker, "run_scenario", flaky)
    result = CampaignEngine(jobs=2, retries=1).run(_configs(2))
    # Each trial burned one pool attempt (lost with the pool, refunded),
    # then one failed local attempt, then its single allowed retry.  If
    # the pool attempt were charged, the budget would already be spent
    # and both trials would surface as failures.
    assert result.failed == 0
    for trial in result.trials:
        assert trial.ok
        assert trial.attempts == 2


def test_console_progress_renders_note_on_own_line():
    import io

    from repro.exec.progress import Progress, console_progress

    stream = io.StringIO()
    callback = console_progress(stream)
    callback(Progress(total=3, done=1, executed=1, cached=0, failed=0,
                      elapsed=1.0, note="worker pool broke; degrading"))
    text = stream.getvalue()
    assert "warning: worker pool broke; degrading\n" in text
