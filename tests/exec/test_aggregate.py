"""Aggregator: merge certification, identity, and the ugly edge cases."""

import io
import shutil

import pytest

from repro.exec.aggregate import (
    AggregateError,
    CoverageError,
    format_csv_row,
    merge_campaign,
    watch_campaign,
    write_merge_output,
)
from repro.exec.manifest import MANIFEST_NAME, start_campaign
from repro.exec.shard import ShardPlan, shard_dir, start_shard
from repro.experiments.scenario import ScenarioConfig


def _grid(n=6):
    """A tiny labelled grid shaped like the churn campaign's."""
    labels = []
    configs = []
    for i in range(n):
        fault = "baseline" if i % 2 == 0 else "crash"
        protocol = "ldr" if i % 3 else "aodv"
        labels.append((fault, protocol))
        configs.append(ScenarioConfig(num_nodes=8, num_flows=2,
                                      duration=5.0, seed=1 + i,
                                      protocol=protocol))
    return labels, configs


def _run_shards(root, configs, plan, labels=None, indices=None,
                name="agg"):
    for index in (range(plan.shards) if indices is None else indices):
        manifest, engine, subset = start_shard(
            root, configs, plan, index, name=name, labels=labels)
        engine.run([config for _, config in subset])
        manifest.close()


def _run_plain(root, configs, labels, name="agg"):
    meta = {"labels": [list(label) for label in labels]}
    manifest, engine = start_campaign(root, configs, name=name, meta=meta)
    result = engine.run(configs)
    manifest.close()
    return result


# -- identity: the tentpole invariant ----------------------------------


def test_sharded_merge_is_byte_identical_to_unsharded(tmp_path):
    labels, configs = _grid(6)
    _run_plain(tmp_path / "plain", configs, labels)
    _run_shards(tmp_path / "sharded", configs, ShardPlan(2, "hash"),
                labels=labels)

    plain = merge_campaign(tmp_path / "plain")
    sharded = merge_campaign(tmp_path / "sharded")
    assert sharded.complete and plain.complete
    assert sharded.completed_rows() == plain.completed_rows()
    assert sharded.render_table() == plain.render_table()
    assert [format_csv_row(r) for r in sharded.csv_rows()] == \
        [format_csv_row(r) for r in plain.csv_rows()]


@pytest.mark.parametrize("mode", ["hash", "range"])
def test_both_partition_modes_merge_complete(tmp_path, mode):
    labels, configs = _grid(5)
    _run_shards(tmp_path, configs, ShardPlan(3, mode), labels=labels)
    merged = merge_campaign(tmp_path)
    assert merged.complete
    assert merged.completed == 5
    assert [t.index for t in merged.ordered_trials()] == list(range(5))


def test_merge_output_is_idempotent(tmp_path):
    labels, configs = _grid(4)
    _run_shards(tmp_path / "camp", configs, ShardPlan(2), labels=labels)
    merged = merge_campaign(tmp_path / "camp")
    first = write_merge_output(merged, tmp_path / "out")
    again = write_merge_output(merge_campaign(tmp_path / "camp"),
                               tmp_path / "out2")
    assert set(first) == set(again)
    for name in first:
        a, b = first[name], again[name]
        if a.is_file():
            assert a.read_bytes() == b.read_bytes()
        else:  # traces/ directory
            assert sorted(p.name for p in a.iterdir()) == \
                sorted(p.name for p in b.iterdir())


# -- certification: gaps, unfinished, overlap --------------------------


def test_missing_shard_is_a_coverage_gap(tmp_path):
    labels, configs = _grid(6)
    _run_shards(tmp_path, configs, ShardPlan(2), labels=labels,
                indices=[0])
    with pytest.raises(CoverageError) as err:
        merge_campaign(tmp_path)
    assert err.value.gaps  # the other shard's global indices
    assert not err.value.unfinished

    merged = merge_campaign(tmp_path, partial=True)
    assert not merged.complete
    assert merged.coverage < 1.0
    # The partial table renders a coverage column and placeholder cells.
    table = merged.render_table()
    assert "cov" in table.splitlines()[0]
    assert "--" in table


def test_registered_but_unrun_trials_block_certification(tmp_path):
    labels, configs = _grid(4)
    plan = ShardPlan(2)
    _run_shards(tmp_path, configs, plan, labels=labels, indices=[0])
    # Shard 1 started (trials registered in its journal) but never ran.
    manifest, _, _ = start_shard(tmp_path, configs, plan, 1, name="agg",
                                 labels=labels)
    manifest.close()
    with pytest.raises(CoverageError) as err:
        merge_campaign(tmp_path)
    assert err.value.unfinished and not err.value.gaps
    merged = merge_campaign(tmp_path, partial=True)
    assert merged.unfinished


def test_overlapping_shards_refuse_to_merge(tmp_path):
    labels, configs = _grid(4)
    _run_shards(tmp_path, configs, ShardPlan(2), labels=labels)
    # Clone shard 0 over shard 1: two journals now claim the same
    # global indices — a mis-configured fleet, not a partial one.
    shutil.rmtree(shard_dir(tmp_path, 1))
    shutil.copytree(shard_dir(tmp_path, 0), shard_dir(tmp_path, 1))
    with pytest.raises(AggregateError, match="two shards"):
        merge_campaign(tmp_path, partial=True)


def test_shards_from_different_grids_refuse_to_merge(tmp_path):
    labels_a, configs_a = _grid(4)
    _, configs_b = _grid(5)
    _run_shards(tmp_path, configs_a, ShardPlan(2), labels=labels_a,
                indices=[0])
    with pytest.raises(AggregateError):
        # Same root, different grid: fingerprints cannot agree.
        _run_shards(tmp_path, configs_b, ShardPlan(2), indices=[1])
        merge_campaign(tmp_path, partial=True)


def test_empty_root_is_an_error(tmp_path):
    with pytest.raises(AggregateError):
        merge_campaign(tmp_path)


# -- tolerance: torn tails, zero-trial shards, lost rows ----------------


def test_torn_shard_journal_merges_with_a_warning(tmp_path):
    labels, configs = _grid(4)
    _run_shards(tmp_path, configs, ShardPlan(2), labels=labels)
    journal = shard_dir(tmp_path, 0) / MANIFEST_NAME
    with open(journal, "ab") as handle:
        handle.write(b'{"torn mid-append')
    merged = merge_campaign(tmp_path)
    assert merged.complete  # the torn record described no finished work
    assert any("torn" in warning for warning in merged.warnings)


def test_more_shards_than_trials_merges_clean(tmp_path):
    """K > N leaves some shards with zero trials; they still count."""
    labels, configs = _grid(3)
    plan = ShardPlan(5, "range")
    assert any(not bucket for bucket in plan.assign(configs))
    _run_shards(tmp_path, configs, plan, labels=labels)
    merged = merge_campaign(tmp_path)
    assert merged.complete
    assert merged.completed == 3
    assert len(merged.views) == 5


def test_lost_cached_row_demotes_to_unfinished(tmp_path):
    labels, configs = _grid(3)
    _run_shards(tmp_path, configs, ShardPlan(1), labels=labels)
    cache_dir = shard_dir(tmp_path, 0) / "cache"
    victim = sorted(cache_dir.glob("??/*.json"))[0]
    victim.unlink()
    with pytest.raises(CoverageError):
        merge_campaign(tmp_path)
    merged = merge_campaign(tmp_path, partial=True)
    assert len(merged.unfinished) == 1
    assert merged.completed == 2
    assert any("missing or corrupt" in w for w in merged.warnings)


def test_plain_campaign_root_is_an_implicit_single_shard(tmp_path):
    labels, configs = _grid(3)
    result = _run_plain(tmp_path, configs, labels)
    merged = merge_campaign(tmp_path)
    assert merged.complete
    assert merged.completed_rows() == [t.row for t in result.trials]
    assert merged.views[0].shard is None


# -- streaming watch ----------------------------------------------------


def test_watch_once_reports_completeness(tmp_path):
    labels, configs = _grid(3)
    plan = ShardPlan(2)
    _run_shards(tmp_path, configs, plan, labels=labels, indices=[0])
    out = io.StringIO()
    assert watch_campaign(tmp_path, out, once=True) == 1
    assert "coverage" in out.getvalue()

    _run_shards(tmp_path, configs, plan, labels=labels, indices=[1])
    out = io.StringIO()
    csv_path = tmp_path / "stream.csv"
    assert watch_campaign(tmp_path, out, once=True,
                          csv_path=csv_path) == 0
    assert "delivery" in out.getvalue()
    lines = csv_path.read_text().splitlines()
    assert lines[0].startswith("index,fault,protocol")
    assert len(lines) == 1 + 3  # header + every terminal trial


def test_watch_streams_rows_as_shards_land(tmp_path):
    """The appended CSV grows monotonically and never repeats a trial."""
    labels, configs = _grid(4)
    plan = ShardPlan(2)
    csv_path = tmp_path / "stream.csv"

    _run_shards(tmp_path / "camp", configs, plan, labels=labels,
                indices=[0])
    out = io.StringIO()
    watch_campaign(tmp_path / "camp", out, once=True, csv_path=csv_path)
    first = csv_path.read_text().splitlines()

    _run_shards(tmp_path / "camp", configs, plan, labels=labels,
                indices=[1])
    out = io.StringIO()
    watch_campaign(tmp_path / "camp", out, once=True, csv_path=csv_path)
    second = csv_path.read_text().splitlines()

    assert len(second) == 1 + 4
    indices = [line.split(",")[0] for line in second[1:]]
    assert len(indices) == len(set(indices))
    # Re-watching from scratch still saw shard 0's rows.
    assert len(first) >= 2


# -- CLI ----------------------------------------------------------------


def test_cli_merge_exit_codes(tmp_path, capsys):
    from repro.__main__ import main

    labels, configs = _grid(4)
    plan = ShardPlan(2)
    root = tmp_path / "camp"
    _run_shards(root, configs, plan, labels=labels, indices=[0],
                name="churn")

    assert main(["campaign", "merge", str(root)]) == 4  # gaps, no --partial
    err = capsys.readouterr().err
    assert "--partial" in err

    assert main(["campaign", "merge", str(root), "--partial"]) == 0
    captured = capsys.readouterr()
    assert "cov" in captured.out.splitlines()[0]
    assert "NOT a certified" in captured.err

    _run_shards(root, configs, plan, labels=labels, indices=[1],
                name="churn")
    out_dir = tmp_path / "out"
    assert main(["campaign", "merge", str(root),
                 "--out", str(out_dir)]) == 0
    capsys.readouterr()
    assert (out_dir / "table.txt").is_file()
    assert (out_dir / "rows.csv").is_file()
    assert (out_dir / "cdf.csv").is_file()

    assert main(["campaign", "merge", str(tmp_path / "nowhere")]) == 2
    assert main(["campaign", "merge"]) == 2
    capsys.readouterr()


def test_cli_watch_once(tmp_path, capsys):
    from repro.__main__ import main

    labels, configs = _grid(3)
    _run_shards(tmp_path, configs, ShardPlan(2), labels=labels,
                name="churn")
    assert main(["campaign", "watch", str(tmp_path), "--once"]) == 0
    assert "coverage" in capsys.readouterr().out


def test_cli_sharded_churn_usage_errors(tmp_path, capsys):
    from repro.__main__ import main

    # --shards without --journal
    assert main(["campaign", "churn", "--shards", "2",
                 "--shard-index", "0"]) == 2
    assert "--journal" in capsys.readouterr().err
    # neither (or both of) --shard-index / --claim
    assert main(["campaign", "churn", "--journal", str(tmp_path),
                 "--shards", "2"]) == 2
    assert "exactly one" in capsys.readouterr().err
    # index outside the plan
    assert main(["campaign", "churn", "--journal", str(tmp_path),
                 "--shards", "2", "--shard-index", "5"]) == 2
    assert "outside" in capsys.readouterr().err


def test_cli_sharded_churn_runs_and_merges(tmp_path, capsys):
    """claim-mode drains every shard in one process; merge certifies."""
    from repro.__main__ import main

    root = tmp_path / "camp"
    args = ["--duration", "4", "--trials", "1", "--journal", str(root)]
    assert main(["campaign", "churn"] + args
                + ["--shards", "2", "--claim"]) == 0
    err = capsys.readouterr().err
    assert "merge when all shards are done" in err

    assert main(["campaign", "merge", str(root)]) == 0
    captured = capsys.readouterr()
    assert "coverage 15/15" in captured.err
    assert "baseline" in captured.out  # the rendered churn table
