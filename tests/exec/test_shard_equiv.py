"""The fabric's headline invariant, end to end.

A K-shard campaign — with one shard crashed mid-run and resumed — must
merge to the byte-identical table, row CSV, CDF CSV, and trace-artifact
set of the same campaign run unsharded.  The CI ``shard-equiv`` job
replays this with a real SIGKILL across processes; this test pins the
same property in-process using the crash signature a SIGKILL leaves
behind (a journal cut mid-stream) so the suite stays fast and portable.
"""

from repro.exec.aggregate import merge_campaign, write_merge_output
from repro.exec.manifest import (
    MANIFEST_NAME,
    resume_campaign,
    start_campaign,
)
from repro.exec.shard import ShardPlan, shard_dir, start_shard
from repro.experiments.scenario import ScenarioConfig


def _grid(n=6):
    labels = []
    configs = []
    for i in range(n):
        fault = "baseline" if i % 2 == 0 else "crash"
        protocol = "ldr" if i % 3 else "aodv"
        labels.append((fault, protocol))
        configs.append(ScenarioConfig(num_nodes=8, num_flows=2,
                                      duration=5.0, seed=1 + i,
                                      protocol=protocol))
    return labels, configs


def _crash_after_first_done(sdir):
    """Rewind the shard's journal to just after its first ``done`` record
    and drop that trial's cached row — the on-disk state a SIGKILL leaves
    when it lands mid-campaign (later records never happened; the resumed
    run must genuinely re-execute, not just replay the cache)."""
    import json

    journal = sdir / MANIFEST_NAME
    lines = journal.read_bytes().splitlines(keepends=True)
    keys = {}
    cut = None
    done_key = None
    for i, line in enumerate(lines):
        doc = json.loads(line)
        if doc.get("type") == "trial":
            keys[doc["index"]] = doc["key"]
        elif doc.get("type") == "state" and doc["state"] == "done":
            done_key = keys[doc["index"]]
            cut = i + 1
            break
    assert cut is not None and cut < len(lines), \
        "grid too small to cut the journal mid-run"
    journal.write_bytes(b"".join(lines[:cut]))
    victim = sdir / "cache" / done_key[:2] / (done_key + ".json")
    if victim.is_file():
        victim.unlink()
    return len(lines) - cut


def test_crashed_and_resumed_shards_merge_byte_identical(tmp_path):
    labels, configs = _grid(6)
    plan = ShardPlan(3, "hash")

    # -- unsharded reference, traces on --------------------------------
    plain_root = tmp_path / "plain"
    manifest, engine = start_campaign(
        plain_root, configs, name="equiv",
        meta={"labels": [list(label) for label in labels]}, trace=True)
    engine.run(configs)
    manifest.close()

    # -- sharded run; the busiest shard crashes mid-run ----------------
    shard_root = tmp_path / "sharded"
    sizes = [(len(bucket), index)
             for index, bucket in enumerate(plan.assign(configs))]
    crash_index = max(sizes)[1]  # needs >= 2 trials to crash between
    for index in range(plan.shards):
        manifest, engine, subset = start_shard(
            shard_root, configs, plan, index, name="equiv",
            labels=labels, trace=True)
        engine.run([config for _, config in subset])
        manifest.close()

    dropped = _crash_after_first_done(shard_dir(shard_root, crash_index))
    assert dropped > 0

    # The resumed shard re-executes exactly the records the crash ate.
    manifest, resumed = resume_campaign(shard_dir(shard_root, crash_index))
    manifest.close()
    assert not resumed.interrupted
    assert resumed.executed > 0  # real work, not a pure cache replay

    # -- merge both and compare artifact bytes -------------------------
    plain = merge_campaign(plain_root)
    sharded = merge_campaign(shard_root)
    assert plain.complete and sharded.complete

    plain_out = write_merge_output(plain, tmp_path / "out-plain")
    shard_out = write_merge_output(sharded, tmp_path / "out-sharded")
    assert set(plain_out) == set(shard_out) >= {"table", "rows", "cdf",
                                                "traces"}
    for name in ("table", "rows", "cdf"):
        assert plain_out[name].read_bytes() == shard_out[name].read_bytes()

    plain_traces = sorted(p.name for p in plain_out["traces"].iterdir())
    shard_traces = sorted(p.name for p in shard_out["traces"].iterdir())
    assert plain_traces == shard_traces and plain_traces
    for name in plain_traces:
        assert (plain_out["traces"] / name).read_bytes() == \
            (shard_out["traces"] / name).read_bytes()
