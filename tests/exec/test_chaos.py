"""The chaos harness: injector pieces fast, the full self-test slow."""

import random

import pytest

from repro.exec import chaos
from repro.exec.cache import ResultCache
from repro.exec.manifest import CampaignManifest, campaign_paths, start_campaign
from repro.experiments.scenario import ScenarioConfig, ConfigSerializationError


def test_chaos_grid_shapes_and_poison():
    configs = chaos.chaos_grid(trials=2)
    assert len(configs) == 5  # 2 protocols x 2 seeds + poison
    poison = configs[-1]
    healthy = configs[:-1]
    assert all(c.duration <= 10.0 for c in healthy)
    assert poison.duration > 100.0 and poison.num_nodes > 100
    # Poison must be journal-able: data-driven, serializable, keyed.
    try:
        poison.to_dict()
    except ConfigSerializationError:  # pragma: no cover
        raise AssertionError("poison config must serialize")
    assert [c.to_dict() for c in chaos.chaos_grid(trials=2, poison=False)] \
        == [c.to_dict() for c in healthy]


def test_truncate_journal_tail_respects_floor(tmp_path):
    configs = [ScenarioConfig(num_nodes=8, num_flows=2, duration=5.0,
                              seed=s) for s in (1, 2)]
    path = tmp_path / "manifest.jsonl"
    manifest = CampaignManifest.create(path, configs)
    floor = path.stat().st_size
    rng = random.Random(3)
    # Nothing after the floor yet: nothing to chop.
    assert chaos.truncate_journal_tail(path, floor, rng) == 0
    manifest.record_state(0, "done", attempt=1)
    manifest.record_state(1, "done", attempt=1)
    manifest.close()
    size = path.stat().st_size
    chopped = chaos.truncate_journal_tail(path, floor, rng)
    assert 1 <= chopped <= min(80, size - floor)
    assert path.stat().st_size >= floor
    # Whatever got torn, the journal still loads (torn-tail tolerance).
    CampaignManifest.load(path)


def test_corrupt_cache_entry_breaks_exactly_one_row(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put("ab" * 32, {"x": 1})
    cache.put("cd" * 32, {"x": 2})
    victim = chaos.corrupt_cache_entry(cache.root, random.Random(1))
    assert victim is not None
    rows = [cache.lookup("ab" * 32), cache.lookup("cd" * 32)]
    broken = [note for row, note in rows if note]
    intact = [row for row, note in rows if row is not None]
    assert len(broken) == 1 and len(intact) == 1
    assert chaos.corrupt_cache_entry(tmp_path / "empty",
                                     random.Random(1)) is None


def test_corrupt_trace_artifact_tears_one_file(tmp_path):
    trace_dir = tmp_path / "traces"
    trace_dir.mkdir()
    artifact = trace_dir / ("ab" * 32 + ".trace.jsonl")
    artifact.write_text('{"type": "header", "schema": 2}\n' + "x" * 100)
    before = artifact.stat().st_size
    victim = chaos.corrupt_trace_artifact(trace_dir, random.Random(1))
    assert victim == artifact
    assert artifact.stat().st_size < before
    assert chaos.corrupt_trace_artifact(tmp_path / "none",
                                        random.Random(1)) is None


def test_snapshot_separates_rows_traces_quarantine(tmp_path):
    configs = [ScenarioConfig(num_nodes=8, num_flows=2, duration=5.0,
                              seed=s) for s in (1, 2)]
    root = tmp_path / "camp"
    manifest, engine = start_campaign(root, configs, trace=True)
    result = engine.run(configs)
    manifest.close()
    _, _, trace_dir = campaign_paths(root)
    rows, traces, quarantined = chaos._snapshot(result, trace_dir)
    assert sorted(rows) == [0, 1]
    assert len(traces) == 2
    assert quarantined == set()


@pytest.mark.slow
def test_full_chaos_run_is_byte_identical(tmp_path, capsys):
    # The whole gauntlet: SIGKILL a worker and the driver, truncate the
    # journal, corrupt cache + trace bytes, resume, compare everything.
    code = chaos.run_chaos(tmp_path / "chaos", jobs=2, seed=7,
                           trials=1, duration=6.0, timeout=8.0)
    out = capsys.readouterr().out
    assert code == 0, out
    assert "chaos: OK" in out
    assert "quarantined" in out
