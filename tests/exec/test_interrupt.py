"""Graceful interruption: SIGINT/SIGTERM checkpoint-and-exit, then resume."""

import json
import os
import signal

import pytest

from repro.exec.engine import CampaignEngine, CampaignError
from repro.exec.manifest import CampaignManifest, resume_campaign, start_campaign
from repro.experiments.scenario import ScenarioConfig


def _configs(n=3):
    return [ScenarioConfig(num_nodes=8, num_flows=2, duration=5.0,
                           seed=1 + i) for i in range(n)]


def _interrupt_after_first_settle(signum):
    state = {"sent": False}

    def callback(progress):
        if progress.done >= 1 and not state["sent"]:
            state["sent"] = True
            os.kill(os.getpid(), signum)

    return callback


@pytest.mark.parametrize("signum,name", [(signal.SIGINT, "SIGINT"),
                                         (signal.SIGTERM, "SIGTERM")])
def test_signal_checkpoints_journaled_run(tmp_path, signum, name):
    configs = _configs(3)
    root = tmp_path / "camp"
    manifest, engine = start_campaign(root, configs)
    engine.progress = _interrupt_after_first_settle(signum)
    previous = signal.getsignal(signum)
    result = engine.run(configs)
    manifest.close()
    # The run stopped at a trial boundary, reporting the signal and the
    # partial coverage rather than dying or finishing.
    assert result.interrupted == name
    assert 0 < len(result.completed_rows()) < len(configs)
    assert 0.0 < result.coverage < 1.0
    assert result.failed == 0
    with pytest.raises(CampaignError):
        result.rows()
    # The journal is valid and names the work left outstanding.
    loaded = CampaignManifest.load(root / "manifest.jsonl")
    done = loaded.counts()["done"]
    assert done == len(result.completed_rows())
    assert loaded.outstanding(max_attempts=2)
    # Handlers were restored on the way out.
    assert signal.getsignal(signum) is previous


def test_resume_after_interrupt_matches_uninterrupted_run(tmp_path):
    configs = _configs(3)
    clean = CampaignEngine().run(configs)

    root = tmp_path / "camp"
    manifest, engine = start_campaign(root, configs)
    engine.progress = _interrupt_after_first_settle(signal.SIGINT)
    partial = engine.run(configs)
    manifest.close()
    assert partial.interrupted == "SIGINT"

    loaded, resumed = resume_campaign(root)
    assert resumed.interrupted is None
    assert resumed.coverage == 1.0
    assert json.dumps(resumed.rows(), sort_keys=True) == \
        json.dumps(clean.rows(), sort_keys=True)
    # Only the outstanding remainder executed; the checkpointed prefix
    # came back from the campaign cache.
    assert resumed.cached == len(partial.completed_rows())


def test_second_signal_aborts_hard(tmp_path):
    configs = _configs(3)
    root = tmp_path / "camp"
    manifest, engine = start_campaign(root, configs)
    sent = {"n": 0}

    def impatient(progress):
        if progress.done >= 1 and sent["n"] == 0:
            sent["n"] = 1
            os.kill(os.getpid(), signal.SIGINT)
            os.kill(os.getpid(), signal.SIGINT)  # the user means it

    engine.progress = impatient
    with pytest.raises(KeyboardInterrupt):
        engine.run(configs)
    manifest.close()
    # Even a hard abort leaves a loadable journal (that is the point of
    # committing per record): resume finishes the campaign.
    loaded, resumed = resume_campaign(root)
    assert resumed.coverage == 1.0


def test_unjournaled_runs_do_not_install_handlers():
    seen = {}
    previous = signal.getsignal(signal.SIGINT)

    def snoop(progress):
        seen["handler"] = signal.getsignal(signal.SIGINT)

    CampaignEngine(progress=snoop).run(_configs(1))
    assert seen["handler"] is previous  # untouched mid-run


def test_journaled_runs_install_and_restore_handlers(tmp_path):
    configs = _configs(1)
    root = tmp_path / "camp"
    manifest, engine = start_campaign(root, configs)
    previous = signal.getsignal(signal.SIGINT)
    seen = {}

    def snoop(progress):
        seen["handler"] = signal.getsignal(signal.SIGINT)

    engine.progress = snoop
    engine.run(configs)
    manifest.close()
    assert seen["handler"] is not previous  # checkpoint handler mid-run
    assert signal.getsignal(signal.SIGINT) is previous  # restored after
