"""Unit tests for the on-disk trial-result cache and its key scheme."""

import json

import pytest

from repro.exec.cache import ResultCache, default_cache_dir, trial_key
from repro.experiments.scenario import ConfigSerializationError, ScenarioConfig
from repro.mobility import StaticPlacement


def _config(**overrides):
    base = dict(num_nodes=8, num_flows=2, duration=5.0, seed=3)
    base.update(overrides)
    return ScenarioConfig(**base)


def test_trial_key_is_stable():
    assert trial_key(_config()) == trial_key(_config())


def test_trial_key_covers_every_scenario_knob():
    base = trial_key(_config())
    assert trial_key(_config(seed=4)) != base
    assert trial_key(_config(protocol="aodv")) != base
    assert trial_key(_config(pause_time=2.0)) != base


def test_trial_key_covers_protocol_config():
    from repro.protocols import DsrConfig

    base = trial_key(_config(protocol="dsr"))
    tweaked = trial_key(_config(
        protocol="dsr", protocol_config=DsrConfig(cache_lifetime=30.0),
    ))
    assert tweaked != base


def test_trial_key_rejects_live_objects():
    config = _config(mobility=StaticPlacement({0: (0.0, 0.0)}))
    with pytest.raises(ConfigSerializationError):
        trial_key(config)


def test_default_cache_dir_honors_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert default_cache_dir() == tmp_path / "elsewhere"


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    key = trial_key(_config())
    row = {"delivery_ratio": 0.5, "mean_latency": 0.001}
    cache.put(key, row, config=_config())
    assert cache.get(key) == row
    assert key in cache
    assert cache.hits == 1


def test_get_missing_is_none(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("0" * 64) is None
    assert cache.misses == 1


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    key = trial_key(_config())
    cache.put(key, {"delivery_ratio": 1.0})
    path = cache._path(key)
    path.write_text("{not json")
    assert cache.get(key) is None


def test_stats_and_clear(tmp_path):
    cache = ResultCache(tmp_path)
    for seed in range(3):
        cache.put(trial_key(_config(seed=seed)), {"x": seed})
    stats = cache.stats()
    assert stats["entries"] == 3
    assert stats["bytes"] > 0
    assert cache.clear() == 3
    assert cache.stats()["entries"] == 0


def test_iter_entries_and_describe(tmp_path):
    cache = ResultCache(tmp_path)
    config = _config()
    cache.put(trial_key(config), {"delivery_ratio": 1.0}, config=config)
    docs = list(cache.iter_entries())
    assert len(docs) == 1
    line = cache.describe_entry(docs[0])
    assert "ldr" in line and "n=8" in line


def test_put_is_atomic_json(tmp_path):
    cache = ResultCache(tmp_path)
    key = trial_key(_config())
    cache.put(key, {"a": 1})
    with open(cache._path(key)) as fh:
        doc = json.load(fh)
    assert doc["key"] == key and doc["row"] == {"a": 1}
    leftovers = list(tmp_path.rglob("*.tmp"))
    assert leftovers == []
