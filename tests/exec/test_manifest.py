"""The campaign journal: commit semantics, crash tolerance, resume."""

import json

import pytest

from repro.exec.cache import trial_key
from repro.exec.manifest import (
    DONE,
    FAILED,
    QUARANTINED,
    RUNNING,
    CampaignManifest,
    ManifestError,
    campaign_paths,
    resume_campaign,
    start_campaign,
)
from repro.experiments.scenario import ScenarioConfig


def _configs(n=3):
    return [ScenarioConfig(num_nodes=8, num_flows=2, duration=5.0,
                           seed=1 + i) for i in range(n)]


def _fresh(tmp_path, n=3):
    path = tmp_path / "camp" / "manifest.jsonl"
    return CampaignManifest.create(path, _configs(n), name="t"), path


def test_create_registers_every_trial_with_content_keys(tmp_path):
    configs = _configs(3)
    manifest, path = _fresh(tmp_path)
    assert path.is_file()
    assert len(manifest.entries) == 3
    for index, config in enumerate(configs):
        entry = manifest.entries[index]
        assert entry.state == "pending"
        assert entry.attempts == 0
        assert entry.key == trial_key(config)
    # One campaign, one journal: restarting must resume, not overwrite.
    with pytest.raises(FileExistsError):
        CampaignManifest.create(path, configs)


def test_record_state_roundtrips_through_load(tmp_path):
    manifest, path = _fresh(tmp_path)
    manifest.record_state(0, RUNNING, attempt=1, worker=4242)
    manifest.record_state(0, DONE, attempt=1, worker=4242)
    manifest.record_state(1, FAILED, attempt=2,
                          error="Traceback ...\nRuntimeError: boom")
    manifest.record_state(2, QUARANTINED, attempt=3, error="poison")
    manifest.close()
    loaded = CampaignManifest.load(path)
    assert not loaded.torn_tail
    assert loaded.entries[0].state == DONE
    assert loaded.entries[0].worker == 4242
    assert loaded.entries[1].state == FAILED
    assert loaded.entries[1].attempts == 2
    # Only the final traceback line is journaled.
    assert loaded.entries[1].error == "RuntimeError: boom"
    assert loaded.entries[2].state == QUARANTINED
    assert loaded.counts()[DONE] == 1


def test_torn_final_line_is_dropped_not_fatal(tmp_path):
    manifest, path = _fresh(tmp_path)
    manifest.record_state(0, DONE, attempt=1)
    manifest.close()
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"type":"state","index":1,"sta')  # SIGKILL mid-append
    loaded = CampaignManifest.load(path)
    assert loaded.torn_tail
    assert loaded.entries[0].state == DONE
    assert loaded.entries[1].state == "pending"  # torn record re-derives


def test_append_after_torn_tail_repairs_and_survives_reload(tmp_path):
    # Tear the tail, resume with multiple transitions, load again:
    # without the load-time truncation the first append merges onto the
    # partial line (and is silently dropped as a new torn tail), and the
    # second turns the merged line into fatal mid-file corruption.
    manifest, path = _fresh(tmp_path)
    manifest.record_state(0, DONE, attempt=1)
    manifest.close()
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"type":"state","index":1,"sta')  # SIGKILL mid-append
    loaded = CampaignManifest.load(path)
    assert loaded.torn_tail
    loaded.record_state(1, RUNNING, attempt=1)
    loaded.record_state(1, DONE, attempt=1)
    loaded.record_state(2, FAILED, attempt=1, error="boom")
    loaded.close()
    again = CampaignManifest.load(path)
    assert not again.torn_tail  # the torn line was truncated away
    assert again.entries[0].state == DONE
    assert again.entries[1].state == DONE
    assert again.entries[2].state == FAILED


def test_load_truncates_torn_tail_back_to_committed_records(tmp_path):
    manifest, path = _fresh(tmp_path)
    manifest.record_state(0, DONE, attempt=1)
    manifest.close()
    intact = path.read_bytes()
    with open(path, "ab") as fh:
        fh.write(b'{"type":"state","index":1,"sta')
    CampaignManifest.load(path)
    assert path.read_bytes() == intact


def test_append_after_unterminated_final_line_starts_fresh(tmp_path):
    # A crash can commit a record's bytes but not its newline: the line
    # parses on load and must be kept, yet an append must not merge
    # the next record onto it.
    manifest, path = _fresh(tmp_path)
    manifest.record_state(0, DONE, attempt=1)
    manifest.close()
    data = path.read_bytes()
    assert data.endswith(b"\n")
    path.write_bytes(data[:-1])  # strip just the trailing newline
    loaded = CampaignManifest.load(path)
    assert not loaded.torn_tail
    loaded.record_state(1, DONE, attempt=1)
    loaded.close()
    again = CampaignManifest.load(path)
    assert again.entries[0].state == DONE
    assert again.entries[1].state == DONE


def test_record_state_tolerates_empty_error_text(tmp_path):
    manifest, path = _fresh(tmp_path)
    manifest.record_state(0, FAILED, attempt=1, error="")
    manifest.record_state(1, FAILED, attempt=1, error="  \n ")
    manifest.close()
    loaded = CampaignManifest.load(path)
    assert loaded.entries[0].error == "(no error text)"
    assert loaded.entries[1].error == "(no error text)"


def test_mid_file_corruption_is_fatal(tmp_path):
    manifest, path = _fresh(tmp_path)
    manifest.record_state(0, DONE, attempt=1)
    manifest.close()
    lines = path.read_text().splitlines()
    lines[1] = lines[1][:10]  # tear a *registration* record, not the tail
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ManifestError):
        CampaignManifest.load(path)


def test_unknown_record_type_is_fatal(tmp_path):
    manifest, path = _fresh(tmp_path)
    manifest.close()
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"type": "mystery"}) + "\n")
        fh.write(json.dumps({"type": "note", "message": "pad"}) + "\n")
    with pytest.raises(ManifestError):
        CampaignManifest.load(path)


def test_running_attempts_are_refunded_on_load(tmp_path):
    manifest, path = _fresh(tmp_path)
    manifest.record_state(0, RUNNING, attempt=1)
    manifest.close()
    loaded = CampaignManifest.load(path)
    # The in-flight attempt died with the campaign: never observed to
    # fail, so the crash must not eat into the retry budget.
    assert loaded.entries[0].attempts == 0
    assert 0 in loaded.outstanding(max_attempts=2)


def test_outstanding_respects_states_and_attempt_budget(tmp_path):
    manifest, path = _fresh(tmp_path, n=4)
    manifest.record_state(0, DONE, attempt=1)
    manifest.record_state(1, QUARANTINED, attempt=2, error="poison")
    manifest.record_state(2, FAILED, attempt=2, error="x")
    manifest.close()
    loaded = CampaignManifest.load(path)
    # done and quarantined are terminal; failed-at-budget stays settled;
    # the untouched pending trial is the only outstanding work.
    assert loaded.outstanding(max_attempts=2) == [3]
    # A wider budget reopens the failed trial.
    assert loaded.outstanding(max_attempts=3) == [2, 3]


def test_notes_are_tolerated_and_ignored_by_reduction(tmp_path):
    manifest, path = _fresh(tmp_path)
    manifest.note("worker pool broke: chaos")
    manifest.record_state(0, DONE, attempt=1)
    manifest.close()
    loaded = CampaignManifest.load(path)
    assert loaded.entries[0].state == DONE


def test_resume_command_names_the_campaign_dir(tmp_path):
    manifest, path = _fresh(tmp_path)
    assert str(path.parent) in manifest.resume_command()
    assert "campaign resume" in manifest.resume_command()


def test_start_campaign_builds_directory_layout(tmp_path):
    root = tmp_path / "camp"
    configs = _configs(2)
    manifest, engine = start_campaign(root, configs, trace=True, jobs=1)
    manifest_path, cache_dir, trace_dir = campaign_paths(root)
    assert manifest_path.is_file()
    assert cache_dir.is_dir()
    assert trace_dir.is_dir()
    assert engine.manifest is manifest
    assert engine.cache.root == cache_dir
    assert engine.trace_dir == trace_dir


def test_resume_after_complete_run_is_byte_identical_and_all_cached(tmp_path):
    root = tmp_path / "camp"
    configs = _configs(2)
    manifest, engine = start_campaign(root, configs)
    first = engine.run(configs)
    manifest.close()
    loaded, second = resume_campaign(root)
    assert [t.row for t in second.trials] == [t.row for t in first.trials]
    assert json.dumps(second.rows(), sort_keys=True) == \
        json.dumps(first.rows(), sort_keys=True)
    assert second.cached == len(configs)  # nothing re-executed
    assert second.coverage == 1.0


def test_resume_executes_only_outstanding_work(tmp_path):
    root = tmp_path / "camp"
    configs = _configs(3)
    manifest, engine = start_campaign(root, configs)
    # Journal one finished trial by hand-running it through the engine,
    # then pretend the campaign died before the rest.
    serial = type(engine)(cache=engine.cache, manifest=manifest).run(configs)
    manifest.close()
    # Wipe one cache entry: its journal state says done, but resume must
    # notice the missing row and re-execute rather than crash.
    victim = serial.trials[1]
    (engine.cache._path(victim.key)).unlink()
    loaded, resumed = resume_campaign(root)
    assert resumed.rows() == serial.rows()
    assert resumed.executed == 1  # exactly the wiped trial re-ran
    assert resumed.cached == 2


def test_engine_rejects_mismatched_config_count(tmp_path):
    root = tmp_path / "camp"
    configs = _configs(3)
    manifest, engine = start_campaign(root, configs)
    with pytest.raises(ValueError):
        engine.run(configs[:2])
