"""ETA honesty: the denominator is wall-clock work, not lucky successes.

Regression pins for a real misreport: the ETA used to divide elapsed
time by the *executed* count, so a campaign whose early settlements were
quarantines (or whose terminal states were absorbed for free from a
resumed journal) reported a nonsense estimate.  The denominator is now
the count of settlements that actually consumed wall-clock this run —
executions, exhaustions and quarantines — mirroring the journal's
terminal records, and excluding cache hits and journal-absorbed states.
"""

import pytest

import repro.exec.worker as worker_mod
from repro.exec.cache import ResultCache
from repro.exec.engine import CampaignEngine
from repro.exec.manifest import resume_campaign, start_campaign
from repro.exec.progress import Progress
from repro.experiments.scenario import ScenarioConfig


def _config(seed=1):
    return ScenarioConfig(num_nodes=8, num_flows=2, duration=5.0, seed=seed)


# -- unit: the estimate itself ----------------------------------------


def test_eta_divides_by_work_not_executed():
    # 4 settlements burned 8s of wall-clock; only 1 produced a row.
    # 4 trials remain: the honest estimate is 8s, not 32s.
    snap = Progress(total=8, done=4, executed=1, cached=0, failed=2,
                    elapsed=8.0, quarantined=1, work=4)
    assert snap.eta == pytest.approx(8.0)


def test_eta_none_until_wall_clock_work_exists():
    # Ten instant cache hits say nothing about the cost of the rest.
    snap = Progress(total=20, done=10, executed=0, cached=10, failed=0,
                    elapsed=0.1, work=0)
    assert snap.eta is None


def test_eta_zero_when_campaign_is_done():
    snap = Progress(total=3, done=3, executed=0, cached=3, failed=0,
                    elapsed=0.1, work=0)
    assert snap.eta == 0.0


def test_eta_falls_back_to_executed_without_work_count():
    # Hand-built snapshots (older tests, external callers) omit ``work``.
    snap = Progress(total=4, done=2, executed=2, cached=0, failed=0,
                    elapsed=4.0)
    assert snap.eta == pytest.approx(4.0)


# -- engine: who advances the denominator ------------------------------


def test_quarantine_advances_the_eta_denominator(monkeypatch):
    """A quarantined poison trial burned real attempts: it is work.

    The poison trial is first in submission order, so it settles before
    any row exists.  The old executed-count denominator was 0 at that
    point and the ETA came back None despite plenty of observed
    wall-clock; the work count makes it finite immediately.
    """
    real = worker_mod.run_scenario

    def poisoned(config):
        if config.seed == 2:
            raise RuntimeError("poison trial")
        return real(config)

    monkeypatch.setattr(worker_mod, "run_scenario", poisoned)
    snapshots = []
    engine = CampaignEngine(quarantine_after=2, backoff_base=0.0,
                            progress=snapshots.append)
    result = engine.run([_config(2), _config(1), _config(3)])
    assert [t.index for t in result.quarantined()] == [0]

    first = snapshots[0]
    assert first.quarantined == 1 and first.executed == 0
    assert first.work == 1
    assert first.eta is not None  # the regression: this used to be None

    last = snapshots[-1]
    assert last.work == 3  # 1 quarantine + 2 executions
    assert last.eta == 0.0


def test_cache_hits_are_not_work(tmp_path):
    configs = [_config(1), _config(2), _config(3)]
    CampaignEngine(cache=ResultCache(tmp_path)).run(configs)

    snapshots = []
    replay = CampaignEngine(cache=ResultCache(tmp_path),
                            progress=snapshots.append).run(configs)
    assert replay.cached == 3
    assert [s.work for s in snapshots] == [0, 0, 0]
    # No wall-clock work observed mid-run: no estimate, rather than a
    # bogus one extrapolated from ~free cache lookups.
    assert snapshots[0].eta is None
    assert snapshots[-1].eta == 0.0


def test_journal_absorbed_states_are_not_work(tmp_path, monkeypatch):
    """Resume settles finished trials for free; none of them are work."""
    real = worker_mod.run_scenario

    def poisoned(config):
        if config.seed == 2:
            raise RuntimeError("poison trial")
        return real(config)

    monkeypatch.setattr(worker_mod, "run_scenario", poisoned)
    root = tmp_path / "camp"
    configs = [_config(1), _config(2), _config(3)]
    manifest, engine = start_campaign(root, configs, name="eta",
                                      quarantine_after=2, backoff_base=0.0)
    first = engine.run(configs)
    manifest.close()
    assert len(first.quarantined()) == 1

    snapshots = []
    manifest, resumed = resume_campaign(root, progress=snapshots.append)
    manifest.close()
    assert resumed.cached == 2
    assert len(resumed.quarantined()) == 1
    # The quarantined trial's state came from the journal, the rows from
    # the cache: zero wall-clock consumed, zero work counted.
    assert [s.work for s in snapshots] == [0, 0, 0]
