"""Unit tests for the multi-trial runner and campaign helpers."""

import pytest

from repro.analysis import Aggregate
from repro.experiments import ScenarioConfig, run_protocol_comparison, run_trials
from repro.experiments.campaigns import Campaign, node_scenario, pause_sweep


def _tiny(protocol="ldr"):
    return ScenarioConfig(protocol=protocol, num_nodes=10, width=800.0,
                          height=300.0, num_flows=2, duration=8.0,
                          pause_time=0.0, seed=5)


def test_run_trials_aggregates_all_metrics():
    results = run_trials(_tiny(), trials=2)
    assert "delivery_ratio" in results
    assert isinstance(results["delivery_ratio"], Aggregate)
    assert len(results["delivery_ratio"].values) == 2
    assert 0.0 <= results["delivery_ratio"].mean <= 1.0


def test_run_trials_uses_distinct_seeds():
    results = run_trials(_tiny(), trials=3)
    values = results["mean_latency"].values
    assert len(set(values)) > 1  # different seeds, different runs


def test_protocol_comparison_shape():
    results = run_protocol_comparison(_tiny(), ["ldr", "aodv"], trials=1)
    assert set(results) == {"ldr", "aodv"}
    for metrics in results.values():
        assert "network_load" in metrics


def test_node_scenario_terrains():
    small = node_scenario(50, 10, 0, 60.0)
    large = node_scenario(100, 30, 0, 60.0)
    assert (small.width, small.height) == (1500.0, 300.0)
    assert (large.width, large.height) == (2200.0, 600.0)
    assert small.num_flows == 10 and large.num_flows == 30


def test_node_scenario_overrides():
    config = node_scenario(50, 10, 0, 60.0, max_speed=5.0)
    assert config.max_speed == 5.0


def test_pause_sweep_scaled_and_paper():
    scaled = pause_sweep(60.0, paper_scale=False)
    assert scaled[0] == 0 and scaled[-1] == 60
    paper = pause_sweep(900.0, paper_scale=True)
    assert paper == [0, 30, 60, 120, 300, 600, 900]


def test_campaign_defaults():
    scaled = Campaign()
    assert scaled.duration < 900
    paper = Campaign(paper_scale=True)
    assert paper.duration == 900.0
    assert paper.trials == 10


def test_missing_metric_key_raises_clear_error():
    from repro.experiments.runner import (
        MissingMetricError,
        aggregate_rows,
        extract_metric,
    )

    row = {"delivery_ratio": 1.0}
    with pytest.raises(MissingMetricError) as err:
        extract_metric(row, "mean_latency")
    message = str(err.value)
    assert "mean_latency" in message
    assert "delivery_ratio" in message  # names what *is* available
    with pytest.raises(MissingMetricError):
        aggregate_rows([row])


def test_missing_metric_error_is_a_keyerror():
    from repro.experiments.runner import MissingMetricError

    assert issubclass(MissingMetricError, KeyError)
