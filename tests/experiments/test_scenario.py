"""Unit tests for scenario construction and execution."""

import pytest

from repro.core import LdrConfig
from repro.experiments import PROTOCOLS, ScenarioConfig, build_scenario, run_scenario
from repro.mobility import RandomWaypoint, StaticPlacement


def _tiny(**overrides):
    base = dict(protocol="ldr", num_nodes=10, width=800.0, height=300.0,
                num_flows=2, duration=10.0, pause_time=0.0, seed=3)
    base.update(overrides)
    return ScenarioConfig(**base)


def test_registry_has_all_protocols():
    assert {"ldr", "aodv", "dsr", "dsr7", "olsr", "dual"} <= set(PROTOCOLS)


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        ScenarioConfig(protocol="ospf")


def test_replaced_overrides_and_validates():
    config = _tiny()
    clone = config.replaced(seed=99, num_flows=5)
    assert clone.seed == 99 and clone.num_flows == 5
    assert config.seed == 3
    with pytest.raises(AttributeError):
        config.replaced(bogus=1)


def test_build_creates_all_nodes_and_protocols():
    scenario = build_scenario(_tiny())
    assert len(scenario.nodes) == 10
    assert len(scenario.protocols) == 10
    assert all(p.name == "ldr" for p in scenario.protocols.values())
    assert isinstance(scenario.mobility, RandomWaypoint)


def test_full_pause_uses_static_placement():
    scenario = build_scenario(_tiny(pause_time=10.0, duration=10.0))
    assert isinstance(scenario.mobility, StaticPlacement)


def test_custom_mobility_honoured():
    placement = StaticPlacement.line(10, 150.0)
    scenario = build_scenario(_tiny(mobility=placement))
    assert scenario.mobility is placement


def test_run_returns_report_with_traffic():
    report = run_scenario(_tiny())
    d = report.as_dict()
    assert d["data_originated"] > 0
    assert 0.0 <= d["delivery_ratio"] <= 1.0


def test_same_seed_same_results():
    a = run_scenario(_tiny()).as_dict()
    b = run_scenario(_tiny()).as_dict()
    assert a == b


def test_different_protocols_share_workload():
    """Mobility and traffic RNG streams are protocol-independent."""
    ldr = build_scenario(_tiny(protocol="ldr"))
    aodv = build_scenario(_tiny(protocol="aodv"))
    assert [f.src for f in ldr.traffic.flows] == [f.src for f in aodv.traffic.flows]
    assert ldr.mobility.position(3, 5.0) == aodv.mobility.position(3, 5.0)


def test_loop_check_flag_installs_checker():
    scenario = build_scenario(_tiny(loop_check=True))
    assert scenario.loop_checker is not None
    scenario.run()
    assert scenario.loop_checker.checks_run > 0


def test_protocol_config_passed_through():
    config = LdrConfig(ttl_start=9)
    scenario = build_scenario(_tiny(protocol_config=config))
    assert all(p.config.ttl_start == 9 for p in scenario.protocols.values())


def test_seqno_observed_for_destinations():
    report = run_scenario(_tiny(protocol="aodv"))
    assert report.c.seqno_final  # every used destination observed


def test_gray_zone_passed_to_channel():
    scenario = build_scenario(_tiny(gray_zone=0.25))
    assert scenario.channel.gray_zone == 0.25
    crisp = build_scenario(_tiny())
    assert crisp.channel.gray_zone == 0.0
