"""ScenarioConfig to_dict/from_dict: the stable wire/cache format."""

import json

import pytest

from repro.experiments.scenario import (
    ConfigSerializationError,
    ScenarioConfig,
)
from repro.mobility import StaticPlacement
from repro.net import MacConfig
from repro.protocols import DsrConfig


def test_roundtrip_defaults():
    config = ScenarioConfig()
    clone = ScenarioConfig.from_dict(config.to_dict())
    assert clone.to_dict() == config.to_dict()


def test_roundtrip_preserves_every_scalar_field():
    config = ScenarioConfig(
        protocol="aodv", num_nodes=24, width=1000.0, height=400.0,
        num_flows=5, rate=2.0, packet_size=256, mean_flow_length=50.0,
        duration=120.0, pause_time=30.0, min_speed=0.5, max_speed=10.0,
        transmission_range=250.0, gray_zone=25.0, seed=42,
        loop_check=True, warmup=2.0,
    )
    clone = ScenarioConfig.from_dict(config.to_dict())
    for field in ScenarioConfig.SCALAR_FIELDS:
        assert getattr(clone, field) == getattr(config, field), field


def test_roundtrip_nested_configs():
    config = ScenarioConfig(
        protocol="dsr",
        protocol_config=DsrConfig(cache_lifetime=30.0, max_salvage_count=5),
        mac_config=MacConfig(retry_limit=4),
    )
    clone = ScenarioConfig.from_dict(config.to_dict())
    assert isinstance(clone.protocol_config, DsrConfig)
    assert clone.protocol_config.cache_lifetime == 30.0
    assert clone.protocol_config.max_salvage_count == 5
    assert isinstance(clone.mac_config, MacConfig)
    assert clone.mac_config.retry_limit == 4
    assert clone.to_dict() == config.to_dict()


def test_to_dict_is_json_serializable():
    config = ScenarioConfig(protocol="dsr", protocol_config=DsrConfig())
    dumped = json.dumps(config.to_dict(), sort_keys=True)
    assert ScenarioConfig.from_dict(json.loads(dumped)).to_dict() == config.to_dict()


def test_to_dict_rejects_live_mobility():
    config = ScenarioConfig(mobility=StaticPlacement({0: (0.0, 0.0)}))
    with pytest.raises(ConfigSerializationError):
        config.to_dict()


def test_to_dict_rejects_callable_config_fields():
    from repro.core import LdrConfig

    config = ScenarioConfig(
        protocol="ldr", protocol_config=LdrConfig(link_cost=lambda a: 1.0),
    )
    with pytest.raises(ConfigSerializationError) as err:
        config.to_dict()
    assert "link_cost" in str(err.value)


def test_from_dict_rejects_unknown_fields():
    data = ScenarioConfig().to_dict()
    data["bogus"] = 1
    with pytest.raises(ValueError) as err:
        ScenarioConfig.from_dict(data)
    assert "bogus" in str(err.value)


def test_from_dict_rejects_unknown_config_type():
    data = ScenarioConfig().to_dict()
    data["protocol_config"] = {"type": "NoSuchConfig", "fields": {}}
    with pytest.raises(ValueError) as err:
        ScenarioConfig.from_dict(data)
    assert "NoSuchConfig" in str(err.value)
