"""Acceptance: the spatial index is observationally inert, for every
protocol in the registry.

A fixed-seed churn scenario (crash + reboot + blackout faults over
RandomWaypoint motion, invariant monitor on) must produce byte-identical
metric rows under ``channel_index="grid"`` and ``"scan"`` — same RNG draw
order, same event interleaving, same counters.  The index choice *is*
part of the serialized config identity (cache rows record how they were
produced), which the key tests below pin from both directions.
"""

import json
import os

import pytest

from repro.exec import CampaignEngine, trial_key
from repro.exec.worker import CHANNEL_INDEX_ENV
from repro.experiments.scenario import (
    PROTOCOLS,
    ScenarioConfig,
    run_scenario,
)
from repro.faults import FaultPlan, LinkBlackout, NodeCrash, NodeReboot


def _churn_plan():
    return FaultPlan(events=[
        NodeCrash(2, 3.0),
        NodeReboot(2, 6.5),
        LinkBlackout(0, 1, 2.0, 5.0),
        NodeCrash(5, 7.0),
    ])


def _config(protocol, index, seed=7):
    return ScenarioConfig(
        protocol=protocol, num_nodes=10, width=1000.0, height=400.0,
        num_flows=2, duration=10.0, pause_time=0.0, warmup=1.0, seed=seed,
        fault_plan=_churn_plan(), invariant_check=True,
        channel_index=index,
    )


def _row(config):
    return json.dumps(run_scenario(config).as_dict(), sort_keys=True)


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_grid_and_scan_rows_byte_identical(protocol):
    assert _row(_config(protocol, "grid")) == _row(_config(protocol, "scan"))


def test_jobs_1_and_jobs_4_identical_for_both_backends():
    configs = [_config("ldr", index, seed=s)
               for index in ("grid", "scan") for s in (1, 2)]
    serial = CampaignEngine(jobs=1).run_rows(configs)
    parallel = CampaignEngine(jobs=4).run_rows(
        [_config("ldr", index, seed=s)
         for index in ("grid", "scan") for s in (1, 2)])
    assert parallel == serial
    # The rows themselves also agree across backends, pairwise by seed.
    assert serial[0] == serial[2] and serial[1] == serial[3]


def test_index_choice_is_cache_identity_but_nothing_else():
    grid = _config("ldr", "grid")
    scan = _config("ldr", "scan")
    # Same trial, different provenance: distinct cache keys...
    assert trial_key(grid) != trial_key(scan)
    # ...and the serialized configs differ in exactly that one field.
    grid_dict, scan_dict = grid.to_dict(), scan.to_dict()
    assert grid_dict.pop("channel_index") == "grid"
    assert scan_dict.pop("channel_index") == "scan"
    assert grid_dict == scan_dict


def test_env_override_forces_backend_without_changing_rows(monkeypatch):
    # REPRO_CHANNEL_INDEX re-routes dispatched trials onto one backend
    # (benchmarking/bisection seam).  Because the backends are
    # observationally identical, the rows must not change.
    baseline = CampaignEngine(jobs=1).run_rows([_config("ldr", "grid")])
    monkeypatch.setenv(CHANNEL_INDEX_ENV, "scan")
    forced = CampaignEngine(jobs=1).run_rows([_config("ldr", "grid")])
    assert forced == baseline
    assert os.environ[CHANNEL_INDEX_ENV] == "scan"  # seam was active
