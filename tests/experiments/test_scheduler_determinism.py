"""Acceptance: the scheduler backend is observationally inert, for every
protocol in the registry.

Sibling of ``test_index_determinism.py``, holding the event-kernel seam
to the same bar the spatial-index seam met: a fixed-seed churn scenario
(crash + reboot + blackout faults over RandomWaypoint motion, invariant
monitor on) must produce byte-identical metric rows — and byte-identical
trace artifacts — under ``scheduler="heap"`` and ``"calendar"``.  The
backend choice *is* part of the serialized config identity (cache rows
record how they were produced), pinned from both directions below.
"""

import json
import os
import pathlib

import pytest

from repro.exec import CampaignEngine, trial_key
from repro.exec.worker import SCHEDULER_ENV, run_trial_payload
from repro.experiments.scenario import (
    PROTOCOLS,
    ScenarioConfig,
    run_scenario,
)
from repro.faults import FaultPlan, LinkBlackout, NodeCrash, NodeReboot


def _churn_plan():
    return FaultPlan(events=[
        NodeCrash(2, 3.0),
        NodeReboot(2, 6.5),
        LinkBlackout(0, 1, 2.0, 5.0),
        NodeCrash(5, 7.0),
    ])


def _config(protocol, backend, seed=7):
    return ScenarioConfig(
        protocol=protocol, num_nodes=10, width=1000.0, height=400.0,
        num_flows=2, duration=10.0, pause_time=0.0, warmup=1.0, seed=seed,
        fault_plan=_churn_plan(), invariant_check=True,
        scheduler=backend,
    )


def _row(config):
    return json.dumps(run_scenario(config).as_dict(), sort_keys=True)


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_heap_and_calendar_rows_byte_identical(protocol):
    assert _row(_config(protocol, "heap")) == _row(_config(protocol,
                                                           "calendar"))


def test_jobs_1_and_jobs_4_identical_for_both_backends():
    configs = [_config("ldr", backend, seed=s)
               for backend in ("calendar", "heap") for s in (1, 2)]
    serial = CampaignEngine(jobs=1).run_rows(configs)
    parallel = CampaignEngine(jobs=4).run_rows(
        [_config("ldr", backend, seed=s)
         for backend in ("calendar", "heap") for s in (1, 2)])
    assert parallel == serial
    # The rows themselves also agree across backends, pairwise by seed.
    assert serial[0] == serial[2] and serial[1] == serial[3]


def test_scheduler_choice_is_cache_identity_but_nothing_else():
    calendar = _config("ldr", "calendar")
    heap = _config("ldr", "heap")
    # Same trial, different provenance: distinct cache keys...
    assert trial_key(calendar) != trial_key(heap)
    # ...and the serialized configs differ in exactly that one field.
    cal_dict, heap_dict = calendar.to_dict(), heap.to_dict()
    assert cal_dict.pop("scheduler") == "calendar"
    assert heap_dict.pop("scheduler") == "heap"
    assert cal_dict == heap_dict


def test_env_override_forces_backend_without_changing_rows(monkeypatch):
    # REPRO_SCHEDULER re-routes dispatched trials onto one backend
    # (benchmarking/bisection seam).  Because the backends are
    # observationally identical, the rows must not change.
    baseline = CampaignEngine(jobs=1).run_rows([_config("ldr", "calendar")])
    monkeypatch.setenv(SCHEDULER_ENV, "heap")
    forced = CampaignEngine(jobs=1).run_rows([_config("ldr", "calendar")])
    assert forced == baseline
    assert os.environ[SCHEDULER_ENV] == "heap"  # seam was active


def test_trace_artifacts_byte_identical_across_backends(tmp_path,
                                                        monkeypatch):
    # Trace files are deterministic (repro.obs.writer), so they extend
    # row identity down to the full event stream.  Two probes:
    #  1. Backend in the config — headers legitimately differ in the
    #     ``scheduler`` field, every event line must still match.
    #  2. Env seam: forcing heap over a calendar config must reproduce
    #     the heap-config trace byte for byte, header included — the
    #     header records the backend that actually ran.
    def _trace(name, backend, env=None):
        path = tmp_path / name
        if env:
            monkeypatch.setenv(SCHEDULER_ENV, env)
        else:
            monkeypatch.delenv(SCHEDULER_ENV, raising=False)
        outcome = run_trial_payload({
            "config": _config("aodv", backend).to_dict(),
            "trace": str(path),
        })
        assert outcome["ok"], outcome.get("error")
        return pathlib.Path(outcome["trace"]).read_bytes()

    calendar = _trace("cal.trace.jsonl", "calendar")
    heap = _trace("heap.trace.jsonl", "heap")
    cal_lines, heap_lines = calendar.splitlines(), heap.splitlines()
    assert cal_lines[0] != heap_lines[0]  # provenance recorded faithfully
    assert cal_lines[1:] == heap_lines[1:]

    forced_heap = _trace("forced.trace.jsonl", "calendar", env="heap")
    assert forced_heap == heap
