"""Unit tests for the table/figure generators (tiny campaigns)."""

from repro.experiments.campaigns import Campaign
from repro.experiments.figures import (
    figure_delivery,
    figure_qualnet_crosscheck,
    figure_seqno,
    format_series,
)
from repro.experiments.tables import TABLE1_METRICS, format_table1, table1


def _tiny_campaign():
    return Campaign(duration=8.0, trials=1, num_nodes_small=12,
                    num_nodes_large=16)


def test_table1_structure():
    campaign = _tiny_campaign()
    results = table1(2, campaign=campaign, protocols=("ldr", "aodv"))
    assert set(results) == {"ldr", "aodv"}
    for metrics in results.values():
        assert set(metrics) == {key for key, _ in TABLE1_METRICS}
        # one sample per (2 node counts x pauses x 1 trial)
        expected = 2 * len(campaign.pauses())
        assert len(metrics["delivery_ratio"].values) == expected


def test_format_table1_renders_all_rows():
    campaign = _tiny_campaign()
    results = table1(2, campaign=campaign, protocols=("ldr",))
    text = format_table1(results, 2)
    assert "LDR" in text
    assert "Delivery" in text
    assert "±" in text


def test_figure_delivery_series_shape():
    campaign = _tiny_campaign()
    series = figure_delivery(12, 2, campaign=campaign, protocols=("ldr",))
    points = series["ldr"]
    assert [p[0] for p in points] == campaign.pauses()
    for _, mean, ci in points:
        assert 0.0 <= mean <= 1.0
        assert ci >= 0.0


def test_figure_seqno_has_four_series():
    campaign = Campaign(duration=6.0, trials=1)
    series = figure_seqno(campaign=campaign, num_nodes=12)
    assert set(series) == {"ldr-low", "ldr-high", "aodv-low", "aodv-high"}


def test_figure_qualnet_uses_dsr7():
    campaign = Campaign(duration=6.0, trials=1, num_nodes_small=12)
    series = figure_qualnet_crosscheck(campaign=campaign)
    assert "dsr7" in series and "dsr" not in series


def test_format_series_renders():
    text = format_series({"ldr": [(0, 0.95, 0.01)]}, "Title", ylabel="y")
    assert "Title" in text
    assert "ldr" in text
    assert "0.9500" in text
