"""The trace determinism contract: same trial, same bytes.

A trace is a pure function of ``(config, seed, fault_plan)``.  These
tests pin that down where it historically breaks: process-global
counters (packet uids, flow ids) leaking across trials run back-to-back
in one process, and serial-vs-parallel campaign execution.
"""

import pathlib

from repro.exec import CampaignEngine, ResultCache
from repro.experiments import ScenarioConfig, build_scenario
from repro.faults import FaultPlan, NodeCrash
from repro.obs import trace_header, write_trace


def _config(seed=1, **overrides):
    base = dict(protocol="ldr", num_nodes=10, width=800.0, height=300.0,
                num_flows=2, duration=6.0, pause_time=0.0, seed=seed,
                trace=True)
    base.update(overrides)
    return ScenarioConfig(**base)


def _trace_bytes(config, path):
    scenario = build_scenario(config)
    scenario.run()
    write_trace(path, scenario.trace, header=trace_header(config=config))
    return pathlib.Path(path).read_bytes()


def test_same_trial_same_bytes(tmp_path):
    a = _trace_bytes(_config(), tmp_path / "a.jsonl")
    b = _trace_bytes(_config(), tmp_path / "b.jsonl")
    assert a == b


def test_prior_trials_do_not_bleed_into_the_trace(tmp_path):
    """Packet uids / flow ids must reset per scenario, not per process."""
    baseline = _trace_bytes(_config(seed=2), tmp_path / "base.jsonl")
    # run unrelated trials first, then the same trial again
    _trace_bytes(_config(seed=1), tmp_path / "noise1.jsonl")
    _trace_bytes(_config(seed=3, num_flows=4), tmp_path / "noise2.jsonl")
    again = _trace_bytes(_config(seed=2), tmp_path / "again.jsonl")
    assert baseline == again


def test_campaign_traces_identical_serial_vs_parallel(tmp_path):
    plan = FaultPlan(events=[NodeCrash(3, 2.0)])
    configs = [
        _config(seed=seed, trace=False, fault_plan=plan,
                invariant_check=True)
        for seed in (1, 2)
    ]
    serial = CampaignEngine(jobs=1, cache=ResultCache(tmp_path / "c1"),
                            trace_dir=tmp_path / "t1")
    pooled = CampaignEngine(jobs=2, cache=ResultCache(tmp_path / "c2"),
                            trace_dir=tmp_path / "t2")
    rows_serial = serial.run(configs).rows()
    rows_pooled = pooled.run(configs).rows()
    assert rows_serial == rows_pooled

    artifacts = sorted((tmp_path / "t1").glob("*.trace.jsonl"))
    assert len(artifacts) == 2
    for artifact in artifacts:
        twin = tmp_path / "t2" / artifact.name
        assert artifact.read_bytes() == twin.read_bytes()


def test_missing_artifact_forces_reexecution(tmp_path):
    configs = [_config(seed=1, trace=False)]

    def engine():
        return CampaignEngine(jobs=1, cache=ResultCache(tmp_path / "cache"),
                              trace_dir=tmp_path / "traces")

    first = engine().run(configs)
    assert first.executed == 1
    (artifact,) = (tmp_path / "traces").glob("*.trace.jsonl")
    original = artifact.read_bytes()

    # artifact present: pure cache hit
    second = engine().run(configs)
    assert second.cached == 1 and second.executed == 0

    # artifact gone: the row alone is not enough, the trial re-runs
    artifact.unlink()
    third = engine().run(configs)
    assert third.executed == 1
    assert artifact.read_bytes() == original


def test_untraced_engine_ignores_artifacts(tmp_path):
    configs = [_config(seed=1, trace=False)]
    cache_dir = tmp_path / "cache"
    CampaignEngine(jobs=1, cache=ResultCache(cache_dir)).run(configs)
    result = CampaignEngine(jobs=1, cache=ResultCache(cache_dir)).run(configs)
    assert result.cached == 1
    assert not list(tmp_path.glob("**/*.trace.jsonl"))


def test_trace_opt_in_changes_cache_identity(tmp_path):
    """trace is part of the serialized config, hence of the trial key."""
    from repro.exec.cache import trial_key

    assert (trial_key(_config(trace=True))
            != trial_key(_config(trace=False)))


def test_tracing_does_not_change_metric_rows():
    from repro.experiments import run_scenario

    traced = run_scenario(_config(trace=True)).as_dict()
    untraced = run_scenario(_config(trace=False)).as_dict()
    assert traced == untraced
