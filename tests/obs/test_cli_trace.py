"""Tests for ``repro run --trace``, ``repro campaign --trace`` and the
``repro trace`` inspection subcommands."""

import json

import pytest

from repro.__main__ import main

TINY = ["--nodes", "10", "--flows", "2", "--duration", "6", "--seed", "3"]


def _make_trace(path, protocol="ldr", extra=()):
    assert main(["run", "--protocol", protocol, *TINY,
                 "--trace", str(path), *extra]) == 0


def test_run_trace_writes_artifact(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    _make_trace(path)
    capsys.readouterr()
    assert path.is_file()
    header = json.loads(path.read_text().splitlines()[0])
    assert header["type"] == "header"
    assert header["config"]["protocol"] == "ldr"


def test_run_profile_prints_counters(tmp_path, capsys):
    assert main(["run", *TINY, "--profile"]) == 0
    err = capsys.readouterr().err
    snapshot = json.loads(err[err.index("{"):])
    assert snapshot["counters"]["sim.events_dispatched"] > 0


def test_trace_summary_round_trips(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    _make_trace(path)
    capsys.readouterr()
    assert main(["trace", "summary", str(path)]) == 0
    out = capsys.readouterr().out
    assert "tx" in out and "route" in out
    assert "protocol=ldr" in out


def test_trace_show_filters(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    _make_trace(path)
    capsys.readouterr()
    assert main(["trace", "show", str(path), "--kind", "route",
                 "--limit", "0"]) == 0
    out = capsys.readouterr().out.strip()
    assert out
    for line in out.splitlines():
        assert "route" in line


def test_trace_routes_replays_sn_fd_d_triplets(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    _make_trace(path)
    capsys.readouterr()
    # find a destination with route events
    dst = None
    for line in path.read_text().splitlines()[1:]:
        doc = json.loads(line)
        if doc["kind"] == "route":
            dst = doc["data"]["dst"]
            break
    assert dst is not None
    assert main(["trace", "routes", str(path), "--dst", str(dst)]) == 0
    out = capsys.readouterr().out
    assert "sn=" in out and "fd=" in out and "d=" in out


def test_trace_diff_identical_exits_zero(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    _make_trace(a)
    _make_trace(b)
    capsys.readouterr()
    assert main(["trace", "diff", str(a), str(b)]) == 0
    assert "identical" in capsys.readouterr().out


def test_trace_diff_ldr_vs_aodv_names_first_divergence(tmp_path, capsys):
    """The churn-divergence workflow: where does AODV's table depart?"""
    ldr = tmp_path / "ldr.jsonl"
    aodv = tmp_path / "aodv.jsonl"
    _make_trace(ldr, protocol="ldr")
    _make_trace(aodv, protocol="aodv")
    capsys.readouterr()
    assert main(["trace", "diff", str(ldr), str(aodv)]) == 1
    out = capsys.readouterr().out
    assert "diverge" in out
    assert "route" in out


def test_trace_diff_all_kinds(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    _make_trace(a, protocol="ldr")
    _make_trace(b, protocol="aodv")
    capsys.readouterr()
    assert main(["trace", "diff", str(a), str(b), "--kind", "all"]) == 1


def test_trace_show_time_window_and_limit(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    _make_trace(path)
    capsys.readouterr()
    assert main(["trace", "show", str(path), "--after", "1", "--before",
                 "5", "--limit", "2"]) == 0
    out = capsys.readouterr().out
    if "more (raise --limit)" in out:
        assert len(out.strip().splitlines()) == 3


def test_trace_routes_node_filter_and_empty(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    _make_trace(path)
    capsys.readouterr()
    # a destination id outside the network has no route events
    assert main(["trace", "routes", str(path), "--dst", "99"]) == 0
    assert "no route events" in capsys.readouterr().out
    assert main(["trace", "routes", str(path), "--dst", "0",
                 "--node", "1"]) == 0


def test_trace_routes_renders_missing_metric_as_dash(tmp_path, capsys):
    """AODV exposes no (sn, fd, d) triplet; routes must still replay."""
    path = tmp_path / "aodv.jsonl"
    _make_trace(path, protocol="aodv")
    capsys.readouterr()
    dst = None
    for line in path.read_text().splitlines()[1:]:
        doc = json.loads(line)
        if doc["kind"] == "route":
            dst = doc["data"]["dst"]
            break
    assert dst is not None
    assert main(["trace", "routes", str(path), "--dst", str(dst)]) == 0
    out = capsys.readouterr().out
    assert " -" in out  # metric renders as a dash, not a crash


def test_trace_diff_length_mismatch(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    _make_trace(a)
    # b = a minus its last event: equal prefix, then one side ends
    lines = a.read_text().splitlines()
    b.write_text("\n".join(lines[:-1]) + "\n")
    capsys.readouterr()
    assert main(["trace", "diff", str(a), str(b), "--kind", "all"]) == 1
    assert "end of trace" in capsys.readouterr().out


def test_trace_summary_unreadable_file_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not a trace\n")
    assert main(["trace", "summary", str(bad)]) == 2
    assert main(["trace", "summary", str(tmp_path / "missing.jsonl")]) == 2


def test_trace_requires_subcommand():
    with pytest.raises(SystemExit):
        main(["trace"])


def test_campaign_churn_emits_artifacts(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    # exit 1 is legal here: tiny partition runs can breach the
    # reconvergence bound, and the churn command surfaces violations
    rc = main(["campaign", "churn", "--duration", "4", "--trials", "1",
               "--trace", str(tmp_path / "artifacts")])
    assert rc in (0, 1)
    capsys.readouterr()
    artifacts = list((tmp_path / "artifacts").glob("*.trace.jsonl"))
    # 5 fault plans x 3 protocols x 1 trial
    assert len(artifacts) == 15
    # each artifact is summarizable
    assert main(["trace", "summary", str(artifacts[0])]) == 0
