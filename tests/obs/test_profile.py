"""Tests for the counter/timer profiling registry and stack sampler."""

import time

import pytest

from repro.experiments import ScenarioConfig, run_scenario
from repro.obs import Profiler, StackSampler


def test_counters_accumulate():
    prof = Profiler()
    prof.count("a")
    prof.count("a", 4)
    prof.count("b", 2)
    assert prof.counters == {"a": 5, "b": 2}


def test_timed_accumulates_wall_time():
    prof = Profiler()
    with prof.timed("phase"):
        pass
    with prof.timed("phase"):
        pass
    assert prof.timers["phase"] >= 0.0


def test_snapshot_sorts_keys_and_rounds_timers():
    prof = Profiler()
    prof.count("z")
    prof.count("a")
    prof.add_time("t", 0.123456789)
    snap = prof.snapshot()
    assert list(snap["counters"]) == ["a", "z"]
    assert snap["timers"]["t"] == 0.123457


def _tiny_config(**overrides):
    base = dict(protocol="ldr", num_nodes=10, width=800.0, height=300.0,
                num_flows=2, duration=6.0, pause_time=0.0, seed=5)
    base.update(overrides)
    return ScenarioConfig(**base)


def test_run_report_exposes_profile():
    report = run_scenario(_tiny_config())
    snap = report.profile_dict()
    assert snap["counters"]["sim.events_dispatched"] > 0
    assert snap["counters"]["channel.transmits"] > 0
    assert snap["counters"]["mac.sends"] > 0
    assert snap["timers"]["sim.run"] >= 0.0


def test_profile_counters_are_deterministic():
    """Counters are a pure function of the trial (timers are not)."""
    first = run_scenario(_tiny_config()).profile_dict()
    second = run_scenario(_tiny_config()).profile_dict()
    assert first["counters"] == second["counters"]


def test_profile_stays_out_of_metric_rows():
    """Rows are cached/compared byte-for-byte; wall timers must not leak."""
    row = run_scenario(_tiny_config()).as_dict()
    assert "timers" not in row
    assert "counters" not in row
    assert "profile" not in row


def _spin(seconds):
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(200))


def test_stack_sampler_collects_folded_stacks():
    sampler = StackSampler(interval=0.001)
    with sampler:
        _spin(0.2)
    assert sampler.sample_count > 10
    lines = sampler.collapsed()
    assert sum(int(line.rsplit(" ", 1)[1]) for line in lines) \
        == sampler.sample_count
    # Root-first folded stacks: the busy helper is a leaf somewhere.
    assert any("_spin" in line.rsplit(" ", 1)[0].split(";")[-1]
               for line in lines)
    # Heaviest stack leads (flamegraph tooling does not care, humans do).
    counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
    assert counts == sorted(counts, reverse=True)


def test_stack_sampler_write_collapsed(tmp_path):
    sampler = StackSampler(interval=0.001)
    with sampler:
        _spin(0.1)
    out = tmp_path / "profile.folded"
    written = sampler.write_collapsed(out)
    text = out.read_text(encoding="utf-8")
    assert written == len(text.splitlines()) == len(sampler.samples)
    for line in text.splitlines():
        stack, count = line.rsplit(" ", 1)
        assert int(count) > 0 and stack


def test_stack_sampler_guards():
    with pytest.raises(ValueError):
        StackSampler(interval=0.0)
    sampler = StackSampler()
    sampler.stop()  # stop before start is a no-op
    with sampler:
        with pytest.raises(RuntimeError):
            sampler.start()
    sampler.stop()  # idempotent after the context exit
