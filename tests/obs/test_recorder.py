"""Tests for TraceRecorder retention, filtering, and hook wiring."""

import io

import pytest

from repro.experiments import ScenarioConfig, build_scenario
from repro.faults import FaultPlan, NodeCrash, NodeReboot
from repro.obs import JsonlTraceWriter, TraceRecorder


class StubSim:
    """Just enough simulator for a recorder: a clock."""

    def __init__(self):
        self.now = 0.0


def _fill(recorder, count):
    sim = recorder.sim
    for i in range(count):
        sim.now = float(i)
        recorder.record("tx", i)


def test_rejects_unknown_policy():
    with pytest.raises(ValueError):
        TraceRecorder(StubSim(), policy="middle")


def test_oldest_policy_keeps_the_head():
    recorder = TraceRecorder(StubSim(), max_events=5, policy="oldest")
    _fill(recorder, 12)
    assert recorder.truncated
    assert recorder.recorded == 12
    assert [e.node for e in recorder.events] == [0, 1, 2, 3, 4]


def test_newest_policy_keeps_the_tail():
    recorder = TraceRecorder(StubSim(), max_events=5, policy="newest")
    _fill(recorder, 12)
    assert recorder.truncated
    assert recorder.recorded == 12
    assert [e.node for e in recorder.events] == [7, 8, 9, 10, 11]


def test_unbounded_never_truncates():
    recorder = TraceRecorder(StubSim(), max_events=None)
    _fill(recorder, 300)
    assert not recorder.truncated
    assert len(recorder.events) == 300


def test_exactly_at_cap_is_not_truncated():
    for policy in ("oldest", "newest"):
        recorder = TraceRecorder(StubSim(), max_events=5, policy=policy)
        _fill(recorder, 5)
        assert not recorder.truncated
        assert len(recorder.events) == 5


def test_writer_receives_every_event_despite_cap():
    """Spill-to-disk: the writer sees the full stream, the buffer is capped."""
    stream = io.StringIO()
    writer = JsonlTraceWriter(stream)
    recorder = TraceRecorder(StubSim(), max_events=3, policy="oldest",
                             writer=writer)
    _fill(recorder, 10)
    assert len(recorder.events) == 3
    assert writer.events_written == 10
    # header + one line per event
    assert len(stream.getvalue().splitlines()) == 11


def test_select_filters_compose():
    recorder = TraceRecorder(StubSim())
    sim = recorder.sim
    for i in range(10):
        sim.now = float(i)
        recorder.record("tx" if i % 2 else "drop", i % 3, dst=i % 4)
    picked = recorder.select(kind="tx", node=1, after=2.0, before=8.0)
    for event in picked:
        assert event.kind == "tx"
        assert event.node == 1
        assert 2.0 <= event.time <= 8.0
    assert picked == [
        e for e in recorder.select(kind="tx", node=1)
        if 2.0 <= e.time <= 8.0
    ]
    assert all(e.data["dst"] == 3 for e in recorder.select(dst=3))


def test_to_json_and_format_render():
    import json

    recorder = TraceRecorder(StubSim())
    _fill(recorder, 8)
    docs = json.loads(recorder.to_json(kind="tx"))
    assert len(docs) == 8
    assert docs[0]["kind"] == "tx"
    text = recorder.format(limit=3)
    assert "... 5 more" in text


def test_summary_reports_truncation():
    recorder = TraceRecorder(StubSim(), max_events=2)
    _fill(recorder, 6)
    summary = recorder.summary()
    assert "2 events" in summary
    assert "truncated" in summary
    assert "6 recorded" in summary


class StubProtocol:
    def __init__(self):
        self.node_id = 1
        self.table_change_hook = None
        self.dropped = []

    def successor(self, dst):
        return 2

    def route_metric(self, dst):
        return (7, 1, 3)

    def drop_data(self, packet, reason):
        self.dropped.append((packet, reason))


def test_table_hook_chains_instead_of_replacing():
    recorder = TraceRecorder(StubSim())
    protocol = StubProtocol()
    seen = []
    protocol.table_change_hook = lambda proto, dst: seen.append(dst)
    recorder._chain_table_hook(protocol)
    protocol.table_change_hook(protocol, 9)
    assert seen == [9]  # previous observer still fires
    (event,) = recorder.select(kind="route")
    assert event.data["dst"] == 9
    assert event.data["successor"] == 2
    assert event.data["metric"] == (7, 1, 3)


def _traced_faulty_scenario(plan):
    config = ScenarioConfig(
        protocol="ldr", num_nodes=10, width=800.0, height=300.0,
        num_flows=2, duration=8.0, pause_time=0.0, seed=4,
        fault_plan=plan, invariant_check=True, trace=True,
    )
    return build_scenario(config)


def test_fault_plan_transitions_are_traced():
    plan = FaultPlan(events=[NodeCrash(3, 2.0)])
    scenario = _traced_faulty_scenario(plan)
    scenario.run()
    faults = scenario.trace.select(kind="fault")
    assert faults
    assert any("crash" in e.data["what"] for e in faults)


def test_reboot_reinstruments_fresh_protocol():
    """Route changes on a rebooted node keep flowing into the trace."""
    plan = FaultPlan(events=[NodeCrash(3, 2.0), NodeReboot(3, 3.0)])
    scenario = _traced_faulty_scenario(plan)
    scenario.run()
    # the reboot replaced node 3's protocol; its new instance must be
    # chained to both the recorder and the monitor
    rebooted = scenario.protocols[3]
    assert rebooted.table_change_hook is not None
    events = scenario.trace.select(kind="fault")
    assert any("reboot" in e.data["what"] for e in events)


def test_monitor_still_checks_when_traced():
    """Recorder chaining must not starve the invariant monitor."""
    plan = FaultPlan(events=[NodeCrash(3, 2.0)])
    scenario = _traced_faulty_scenario(plan)
    scenario.run()
    assert scenario.monitor.checks_run > 0
