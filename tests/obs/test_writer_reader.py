"""Round-trip and error-handling tests for JSONL trace files."""

import io
import json

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    JsonlTraceWriter,
    TraceError,
    TraceEvent,
    iter_trace,
    read_trace,
    trace_header,
    write_trace,
)


def _events():
    return [
        TraceEvent(1.0, "tx", 3, {"packet": "rreq", "dst": "bcast"}),
        TraceEvent(1.5, "route", 2, {"dst": 7, "metric": [[0.0, 1], 2, 3]}),
        TraceEvent(2.0, "deliver", 7, {"src": 3, "dst": 7, "flow": 0}),
    ]


def test_write_then_read_round_trips(tmp_path):
    path = tmp_path / "t.jsonl"
    count = write_trace(path, _events(), header=trace_header(seed=9))
    assert count == 3
    header, events = read_trace(path)
    assert header["schema"] == SCHEMA_VERSION
    assert header["seed"] == 9
    assert events == _events()


def test_header_line_is_first_and_canonical(tmp_path):
    path = tmp_path / "t.jsonl"
    write_trace(path, _events())
    first = path.read_text().splitlines()[0]
    doc = json.loads(first)
    assert doc["type"] == "header"
    assert doc["schema"] == SCHEMA_VERSION
    # canonical: compact separators, sorted keys
    assert first == json.dumps(doc, sort_keys=True, separators=(",", ":"))


def test_writer_flushes_header_for_empty_trace():
    stream = io.StringIO()
    writer = JsonlTraceWriter(stream)
    writer.write_header()
    assert json.loads(stream.getvalue())["type"] == "header"


def test_empty_trace_file_round_trips(tmp_path):
    path = tmp_path / "empty.jsonl"
    assert write_trace(path, []) == 0
    header, events = read_trace(path)
    assert header["type"] == "header"
    assert events == []


def test_write_trace_accepts_a_recorder(tmp_path):
    class FakeRecorder:
        events = _events()

    path = tmp_path / "r.jsonl"
    assert write_trace(path, FakeRecorder()) == 3
    _, events = read_trace(path)
    assert events == _events()


def test_write_trace_replaces_existing_file(tmp_path):
    path = tmp_path / "t.jsonl"
    write_trace(path, _events())
    write_trace(path, _events()[:1])
    _, events = read_trace(path)
    assert len(events) == 1


def test_writer_close_writes_header_and_closes_stream(tmp_path):
    path = tmp_path / "t.jsonl"
    stream = open(path, "w", encoding="utf-8")
    writer = JsonlTraceWriter(stream)
    writer.close()
    assert stream.closed
    header, events = read_trace(path)
    assert header["type"] == "header" and events == []


def test_failed_write_leaves_no_temp_files(tmp_path):
    path = tmp_path / "t.jsonl"
    write_trace(path, _events())
    before = path.read_bytes()
    with pytest.raises(AttributeError):
        write_trace(path, [object()])  # not a TraceEvent
    assert path.read_bytes() == before  # original intact
    assert list(tmp_path.glob("*.tmp")) == []


def test_reader_skips_blank_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    write_trace(path, _events())
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n\n")
    _, events = read_trace(path)
    assert len(events) == 3


def test_empty_file_is_a_trace_error(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("")
    with pytest.raises(TraceError):
        list(iter_trace(path))


def test_missing_header_is_a_trace_error(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"t": 1.0, "kind": "tx", "node": 1, "data": {}}\n')
    with pytest.raises(TraceError):
        list(iter_trace(path))


def test_unknown_schema_is_a_trace_error(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "header", "schema": %d}\n'
                    % (SCHEMA_VERSION + 1))
    with pytest.raises(TraceError):
        list(iter_trace(path))


def test_corrupt_event_line_is_a_trace_error(tmp_path):
    path = tmp_path / "bad.jsonl"
    write_trace(path, _events())
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("{not json\n")
    with pytest.raises(TraceError):
        list(iter_trace(path))


def test_missing_file_raises_oserror(tmp_path):
    with pytest.raises(OSError):
        list(iter_trace(tmp_path / "nope.jsonl"))
