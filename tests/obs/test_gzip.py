"""Transparent gzip trace artifacts: round-trips and determinism."""

import gzip

import pytest

from repro.__main__ import main
from repro.obs import (
    JsonlTraceWriter,
    TraceEvent,
    iter_trace,
    read_trace,
    trace_header,
    write_trace,
)

EVENTS = [
    TraceEvent(0.5, "tx", 0, {"bytes": 64}),
    TraceEvent(1.0, "route", 0, {"dst": 2, "successor": 1}),
    TraceEvent(2.0, "deliver", 2, {"src": 0}),
]


def test_write_trace_gz_roundtrip(tmp_path):
    path = tmp_path / "t.trace.jsonl.gz"
    assert write_trace(path, EVENTS, header=trace_header(seed=7)) == 3
    assert path.read_bytes()[:2] == b"\x1f\x8b"
    header, events = read_trace(path)
    assert header["seed"] == 7
    assert events == EVENTS


def test_gz_and_plain_decompress_identically(tmp_path):
    plain = tmp_path / "t.trace.jsonl"
    zipped = tmp_path / "t.trace.jsonl.gz"
    write_trace(plain, EVENTS, header=trace_header(seed=7))
    write_trace(zipped, EVENTS, header=trace_header(seed=7))
    assert gzip.decompress(zipped.read_bytes()) == plain.read_bytes()


def test_gz_bytes_are_deterministic(tmp_path):
    # gzip normally embeds mtime and the original filename; both are
    # pinned so re-runs stay byte-identical (the trace-smoke property).
    a, b = tmp_path / "a.gz", tmp_path / "b.gz"
    write_trace(a, EVENTS, header=trace_header(seed=7))
    write_trace(b, EVENTS, header=trace_header(seed=7))
    assert a.read_bytes() == b.read_bytes()


def test_iter_trace_sniffs_magic_not_suffix(tmp_path):
    # A gzip trace under a plain name still reads (magic-byte sniff)...
    sneaky = tmp_path / "t.trace.jsonl"
    write_trace(tmp_path / "t.gz", EVENTS, header=trace_header(seed=7))
    sneaky.write_bytes((tmp_path / "t.gz").read_bytes())
    docs = list(iter_trace(sneaky))
    assert docs[0]["seed"] == 7
    assert len(docs) == 4

    # ...and a plain trace under a .gz name too.
    mislabeled = tmp_path / "u.trace.jsonl.gz"
    plain = tmp_path / "u.trace.jsonl"
    write_trace(plain, EVENTS, header=trace_header(seed=7))
    mislabeled.write_bytes(plain.read_bytes())
    assert len(list(iter_trace(mislabeled))) == 4


def test_jsonl_writer_open_gz(tmp_path):
    path = tmp_path / "stream.trace.jsonl.gz"
    writer = JsonlTraceWriter.open(path, header=trace_header(seed=1))
    for event in EVENTS:
        writer.emit(event)
    writer.close()
    header, events = read_trace(path)
    assert header["seed"] == 1
    assert events == EVENTS


def test_jsonl_writer_open_gz_empty_trace_has_header(tmp_path):
    path = tmp_path / "empty.trace.jsonl.gz"
    JsonlTraceWriter.open(path, header=trace_header(seed=1)).close()
    header, events = read_trace(path)
    assert header["type"] == "header"
    assert events == []


def test_run_cli_writes_gz_trace(tmp_path, capsys):
    trace = tmp_path / "run.trace.jsonl.gz"
    assert main(["run", "--nodes", "10", "--flows", "2", "--duration", "6",
                 "--seed", "3", "--trace", str(trace)]) == 0
    header, events = read_trace(trace)
    assert header["config"]["num_nodes"] == 10
    assert events


def test_campaign_cli_gzip_artifacts(tmp_path, capsys):
    # Exit code 1 just means the monitor caught violations (AODV/TORA
    # under churn); what this test pins is the artifact format.
    assert main([
        "campaign", "churn", "--trials", "1", "--duration", "6",
        "--trace", str(tmp_path / "traces"),
        "--cache-dir", str(tmp_path / "cache"),
        "--gzip",
    ]) in (0, 1)
    artifacts = sorted((tmp_path / "traces").glob("*.trace.jsonl.gz"))
    assert artifacts
    for artifact in artifacts:
        header, _ = read_trace(artifact)
        assert header["schema"] == 2


def test_trace_cli_reads_gz(tmp_path, capsys):
    trace = tmp_path / "t.trace.jsonl.gz"
    write_trace(trace, EVENTS, header=trace_header(seed=7))
    capsys.readouterr()
    assert main(["trace", "summary", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "3" in out
