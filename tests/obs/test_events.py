"""Tests for the TraceEvent model and its serialization helpers."""

from repro.obs import TraceEvent, jsonable
from repro.routing.seqnum import LabeledSeq


def test_jsonable_passes_scalars_through():
    for value in (None, True, 3, 2.5, "x"):
        assert jsonable(value) == value


def test_jsonable_flattens_labeled_seq():
    assert jsonable(LabeledSeq(1.5, 3)) == [1.5, 3]
    assert jsonable((LabeledSeq(0.0, 1), 2, 4)) == [[0.0, 1], 2, 4]


def test_jsonable_falls_back_to_repr():
    class Odd:
        def __repr__(self):
            return "<odd>"

    assert jsonable(Odd()) == "<odd>"
    assert jsonable([Odd(), 1]) == ["<odd>", 1]


def test_detail_and_repr_render_sorted_fields():
    event = TraceEvent(1.25, "drop", 3, {"reason": "ttl", "dst": 7})
    assert event.detail == "dst=7 reason=ttl"
    text = repr(event)
    assert "drop" in text and "node=3" in text and "reason=ttl" in text


def test_round_trip_and_equality():
    event = TraceEvent(2.0, "route", 1,
                       {"dst": 4, "metric": (LabeledSeq(0.0, 2), 1, 3)})
    clone = TraceEvent.from_doc(event.to_doc())
    assert clone == event
    assert hash(clone) == hash(event)
    assert clone != TraceEvent(2.0, "route", 1, {"dst": 5})
    assert event.__eq__("not an event") is NotImplemented


def test_canonical_is_key_sorted_and_compact():
    event = TraceEvent(1.0, "tx", 2, {"z": 1, "a": 2})
    line = event.canonical()
    assert line.index('"a"') < line.index('"z"')
    assert ": " not in line and ", " not in line
