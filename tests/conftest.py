"""Shared fixtures and helpers for the test-suite."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the trial-result cache at a per-test directory.

    Keeps tests from reading or polluting the user's real cache
    (``~/.cache/repro-ldr``) — CLI campaign commands cache by default.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "trial-cache"))

from repro.metrics import MetricsCollector
from repro.mobility import StaticPlacement
from repro.net import Node, WirelessChannel
from repro.sim import Simulator


class Network:
    """A small static test network with one protocol class on every node."""

    def __init__(self, protocol_cls, placement, config=None, seed=1,
                 transmission_range=275.0, mac_config=None):
        self.sim = Simulator(seed=seed)
        self.metrics = MetricsCollector(self.sim)
        self.placement = placement
        self.channel = WirelessChannel(
            self.sim, placement, transmission_range=transmission_range
        )
        def routing_factory(node):
            return protocol_cls(self.sim, node, config=config,
                                metrics=self.metrics)

        self.routing_factory = routing_factory
        self.nodes = {}
        self.protocols = {}
        for node_id in placement.node_ids():
            node = Node(self.sim, node_id, self.channel,
                        mac_config=mac_config, metrics=self.metrics)
            node.routing_factory = routing_factory
            protocol = routing_factory(node)
            node.install_routing(protocol)
            self.nodes[node_id] = node
            self.protocols[node_id] = protocol
        self.delivered = []
        for node in self.nodes.values():
            node.deliver_fn = self.delivered.append
            node.start()

    def run(self, seconds):
        self.sim.run(until=self.sim.now + seconds)

    def send(self, src, dst, **kw):
        return self.nodes[src].send_data(dst, **kw)

    def delivered_to(self, dst):
        return [p for p in self.delivered if p.dst == dst]


@pytest.fixture
def line_network_factory():
    """Build a line topology a--b--c--... with the given protocol."""

    def factory(protocol_cls, count=4, spacing=200.0, config=None, seed=1):
        return Network(protocol_cls, StaticPlacement.line(count, spacing),
                       config=config, seed=seed)

    return factory


@pytest.fixture
def grid_network_factory():
    def factory(protocol_cls, rows=3, cols=3, spacing=200.0, config=None,
                seed=1):
        return Network(protocol_cls, StaticPlacement.grid(rows, cols, spacing),
                       config=config, seed=seed)

    return factory
